"""Heartbeat failure detection and restart policy for the worker fleet.

Two small, independently testable state machines:

:class:`HeartbeatTracker` answers "when did worker X last prove it was
alive, and has it missed enough beats to be declared dead?". It never
declares anything by itself — the fleet monitor combines its answer with
``Process.is_alive()`` so a worker that *exited* is dead immediately,
while a worker that is merely silent must miss ``misses`` consecutive
intervals first (a long GC pause or a busy CPU is not a crash).

:class:`RestartPolicy` answers "when may a dead worker be respawned, and
should we keep trying?". Respawns back off exponentially (base doubling
per consecutive restart, capped), and a worker that flaps — more than
``quarantine_restarts`` restarts within ``quarantine_window_seconds`` —
is quarantined: no further respawns, its shard's key range is served by
the survivors, and the operator sees it loudly in ``/healthz``. The
restart count resets once a worker stays alive for a full quarantine
window, so one bad afternoon does not poison the policy forever.

Both take an injectable clock so tests drive time instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class _Beat:
    last: float
    busy: bool = False
    beats: int = 0


class HeartbeatTracker:
    """Last-heartbeat bookkeeping for a set of named workers."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._beats: dict[str, _Beat] = {}
        self._meta: dict[str, dict] = {}

    def beat(self, name: str, busy: bool | None = None) -> None:
        """Record a proof of life; ``busy`` optionally updates state."""
        now = self._clock()
        with self._lock:
            entry = self._beats.get(name)
            if entry is None:
                entry = self._beats[name] = _Beat(last=now)
            entry.last = now
            entry.beats += 1
            if busy is not None:
                entry.busy = busy

    def annotate(self, name: str, **meta) -> None:
        """Attach operator-facing metadata (shard, pid, ...) to a worker."""
        with self._lock:
            self._meta.setdefault(name, {}).update(meta)

    def forget(self, name: str) -> None:
        with self._lock:
            self._beats.pop(name, None)
            self._meta.pop(name, None)

    def age(self, name: str) -> float | None:
        """Seconds since the last beat; ``None`` for unknown workers."""
        with self._lock:
            entry = self._beats.get(name)
            if entry is None:
                return None
            return max(0.0, self._clock() - entry.last)

    def missed(self, name: str, interval_seconds: float, misses: int) -> bool:
        """Has ``name`` been silent for ``misses`` whole intervals?

        A worker that never beat at all is *not* missed — the caller
        decides how long startup may take; this only judges workers that
        were alive once.
        """
        age = self.age(name)
        if age is None:
            return False
        return age > interval_seconds * misses

    def snapshot(self) -> list[dict]:
        """JSON-ready per-worker view, sorted by name."""
        now = self._clock()
        with self._lock:
            rows = []
            for name in sorted(self._beats):
                entry = self._beats[name]
                row = {
                    "name": name,
                    "heartbeat_age_seconds": max(0.0, now - entry.last),
                    "busy": entry.busy,
                    "beats": entry.beats,
                }
                row.update(self._meta.get(name, {}))
                rows.append(row)
            return rows


@dataclass
class RestartPolicy:
    """Exponential-backoff respawn with flap quarantine, per worker.

    Attributes:
        backoff_seconds: Delay before the first respawn; doubles per
            consecutive restart.
        backoff_cap_seconds: Upper bound on the delay.
        quarantine_restarts: Restarts within the window beyond which the
            worker is quarantined instead of respawned.
        quarantine_window_seconds: Sliding window for flap counting; a
            worker alive longer than this resets its restart history.
    """

    backoff_seconds: float = 0.25
    backoff_cap_seconds: float = 5.0
    quarantine_restarts: int = 5
    quarantine_window_seconds: float = 30.0
    clock: object = time.monotonic
    _restarts: dict[str, list[float]] = field(default_factory=dict)
    _lifetime: dict[str, int] = field(default_factory=dict)
    _quarantines: dict[str, int] = field(default_factory=dict)
    _quarantined: set[str] = field(default_factory=set)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def record_failure(self, name: str) -> float | None:
        """Note a death; return the respawn delay, or ``None`` = quarantine.

        The delay grows ``backoff * 2**(recent_restarts - 1)`` capped at
        ``backoff_cap_seconds``; crossing ``quarantine_restarts`` recent
        restarts quarantines the worker instead.
        """
        now = self.clock()
        with self._lock:
            self._lifetime[name] = self._lifetime.get(name, 0) + 1
            if name in self._quarantined:
                return None
            history = self._restarts.setdefault(name, [])
            cutoff = now - self.quarantine_window_seconds
            history[:] = [t for t in history if t >= cutoff]
            history.append(now)
            if len(history) > self.quarantine_restarts:
                self._quarantined.add(name)
                self._quarantines[name] = self._quarantines.get(name, 0) + 1
                return None
            return min(
                self.backoff_cap_seconds,
                self.backoff_seconds * (2 ** (len(history) - 1)),
            )

    def is_quarantined(self, name: str) -> bool:
        with self._lock:
            return name in self._quarantined

    def restarts(self, name: str) -> int:
        """Restarts within the current flap window."""
        now = self.clock()
        with self._lock:
            history = self._restarts.get(name, [])
            cutoff = now - self.quarantine_window_seconds
            return sum(1 for t in history if t >= cutoff)

    def total_restarts(self, name: str) -> int:
        """Lifetime failures recorded for ``name`` (never pruned)."""
        with self._lock:
            return self._lifetime.get(name, 0)

    def total_quarantines(self, name: str) -> int:
        """Lifetime quarantine *events* for ``name``: how many times it
        crossed the flap threshold, surviving :meth:`reinstate` (which
        clears the quarantine but not the operator-facing history)."""
        with self._lock:
            return self._quarantines.get(name, 0)

    def reinstate(self, name: str) -> None:
        """Operator override: clear quarantine and history for a worker."""
        with self._lock:
            self._quarantined.discard(name)
            self._restarts.pop(name, None)
