"""Resilient assessment service (admission, deadlines, breaker, anytime).

The long-running front to the assessment engines: bounded admission with
typed load shedding, per-request deadlines with cooperative cancellation,
circuit-broken routing between the parallel and sequential backends,
anytime (partial, honestly widened) results, health/readiness probes and
graceful drain. Run it with ``python -m repro serve`` or embed it via
:class:`AssessmentService` + :class:`ServiceClient`.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.cancellation import NEVER, CancellationToken
from repro.service.client import HttpServiceClient, ServiceClient
from repro.service.health import HealthMonitor
from repro.service.queue import AdmissionQueue
from repro.service.requests import (
    AssessRequest,
    SearchRequest,
    ServiceResponse,
    Ticket,
)
from repro.service.scheduler import AssessmentService, ServiceConfig

__all__ = [
    "AdmissionQueue",
    "AssessRequest",
    "AssessmentService",
    "CancellationToken",
    "CircuitBreaker",
    "HealthMonitor",
    "HttpServiceClient",
    "NEVER",
    "SearchRequest",
    "ServiceClient",
    "ServiceConfig",
    "ServiceResponse",
    "Ticket",
]
