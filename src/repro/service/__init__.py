"""Resilient, durable assessment service.

The long-running front to the assessment engines: bounded admission with
typed load shedding, per-request deadlines with cooperative cancellation,
circuit-broken routing between the parallel and sequential backends,
anytime (partial, honestly widened) results, health/readiness probes and
graceful drain — plus durability: a write-ahead request journal with
crash recovery and idempotent retries backed by a durable result store
(enable with ``journal_dir`` / ``repro serve --journal-dir``). Run it
with ``python -m repro serve`` or embed it via :class:`AssessmentService`
+ :class:`ServiceClient`.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.cancellation import NEVER, CancellationToken
from repro.service.client import HttpServiceClient, ServiceClient
from repro.service.health import HealthMonitor
from repro.service.journal import JournalState, RequestJournal
from repro.service.queue import AdmissionQueue
from repro.service.redeploy import (
    DegradationEvent,
    RecoveryReport,
    RedeployDecision,
    RedeploymentController,
)
from repro.service.requests import (
    AssessRequest,
    SearchRequest,
    ServiceResponse,
    Ticket,
)
from repro.service.scheduler import AssessmentService, ServiceConfig
from repro.service.store import ResultStore

__all__ = [
    "AdmissionQueue",
    "AssessRequest",
    "AssessmentService",
    "CancellationToken",
    "CircuitBreaker",
    "DegradationEvent",
    "HealthMonitor",
    "HttpServiceClient",
    "JournalState",
    "NEVER",
    "RecoveryReport",
    "RedeployDecision",
    "RedeploymentController",
    "RequestJournal",
    "ResultStore",
    "SearchRequest",
    "ServiceClient",
    "ServiceConfig",
    "ServiceResponse",
    "Ticket",
]
