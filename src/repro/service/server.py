"""HTTP front-end for the assessment service: ``python -m repro serve``.

Stdlib-only (``http.server``) so the service runs anywhere the library
does. The handler is a thin protocol adapter — all behaviour (admission,
deadlines, breaker routing, anytime degradation) lives in
:class:`~repro.service.scheduler.AssessmentService`; this module maps it
onto HTTP:

====================  ======================================================
``POST /assess``      body ``{"hosts": [...], "k": 2, "rounds"?,
                      "deadline_seconds"?}`` → 200 with the assessment
                      (``status`` ``ok`` or ``degraded`` — a deadline hit
                      is a *successful* anytime response, never a 5xx)
``POST /search``      body ``{"k", "n", "max_seconds"?, ...}`` → 200
``POST /cancel/<id>`` fire a request's cancellation token → 202 / 404
``GET /healthz``      liveness + full status snapshot (200 / 503)
``GET /readyz``       readiness: 200 only while SERVING
``GET /metrics``      counters, gauges and timers as JSON
====================  ======================================================

Error mapping: validation → 400 with field-level detail, admission
rejection → 503 with ``Retry-After`` (the typed load-shedding signal),
internal errors → 500. SIGTERM/SIGINT trigger a graceful drain: the
listener stops accepting, queued requests get typed rejections, in-flight
requests finish (or are cancelled into anytime results after the drain
timeout), then the process exits 0.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.requests import AssessRequest, SearchRequest
from repro.service.scheduler import AssessmentService, ServiceConfig
from repro.util.errors import AdmissionRejected, ReproError, ValidationError

logger = logging.getLogger("repro.service")

#: Maximum accepted request-body size; anything larger is a client error.
MAX_BODY_BYTES = 1 << 20


class ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, service: AssessmentService):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------

    def _send_json(self, status: int, document: dict, headers: dict | None = None):
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValidationError(
                [("body", f"request body exceeds {MAX_BODY_BYTES} bytes")]
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise ValidationError([("body", f"invalid JSON: {exc}")]) from exc
        if not isinstance(payload, dict):
            raise ValidationError([("body", "request body must be a JSON object")])
        return payload

    @property
    def service(self) -> AssessmentService:
        return self.server.service

    def log_message(self, format, *args):  # route through logging, not stderr
        logger.debug("http " + format, *args)

    # ------------------------------------------------------------------

    def do_GET(self):
        service = self.service
        if self.path == "/healthz":
            document = service.status()
            self._send_json(200 if service.health.live else 503, document)
        elif self.path == "/readyz":
            ready = service.health.ready
            self._send_json(
                200 if ready else 503,
                {"ready": ready, "state": service.health.state},
            )
        elif self.path == "/metrics":
            self._send_json(200, service.metrics.snapshot())
        else:
            self._send_json(404, {"error": "not_found", "path": self.path})

    def do_POST(self):
        service = self.service
        try:
            if self.path == "/assess":
                payload = self._read_body()
                request = AssessRequest.from_dict(payload)
                response = service.assess(request)
                self._send_json(200, response.to_dict())
            elif self.path == "/search":
                payload = self._read_body()
                request = SearchRequest.from_dict(payload)
                response = service.search(request)
                self._send_json(200, response.to_dict())
            elif self.path.startswith("/cancel/"):
                request_id = self.path[len("/cancel/"):]
                found = service.cancel(request_id)
                if found:
                    self._send_json(202, {"cancelled": request_id})
                else:
                    self._send_json(
                        404, {"error": "unknown_request", "request_id": request_id}
                    )
            else:
                self._send_json(404, {"error": "not_found", "path": self.path})
        except ValidationError as exc:
            self._send_json(400, exc.as_dict())
        except AdmissionRejected as exc:
            retry_after = "1"
            self._send_json(
                503,
                {
                    "error": "admission",
                    "reason": exc.reason,
                    "message": str(exc),
                    "queue_depth": exc.queue_depth,
                    "capacity": exc.capacity,
                },
                headers={"Retry-After": retry_after},
            )
        except ReproError as exc:
            self._send_json(
                500, {"error": type(exc).__name__, "message": str(exc)}
            )


# ----------------------------------------------------------------------


def serve(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 8321,
    install_signal_handlers: bool = True,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    Returns the process exit code (0 for a clean drain). Signal handlers
    are optional so tests can drive shutdown directly. With
    ``config.fleet_workers > 0`` the HTTP front talks to a
    :class:`~repro.service.fleet.FleetSupervisor` — N forked shard
    worker processes with heartbeat supervision and journal-based
    failover — instead of the in-process thread scheduler; the handler
    cannot tell the difference.
    """
    if config is not None and config.fleet_workers > 0:
        from repro.service.fleet import FleetSupervisor

        service = FleetSupervisor(config).start()
    else:
        service = AssessmentService(config).start()
    httpd = ServiceHTTPServer((host, port), service)
    stop_event = threading.Event()

    def _request_shutdown(signum=None, frame=None):
        stop_event.set()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, _request_shutdown)
        signal.signal(signal.SIGINT, _request_shutdown)

    server_thread = threading.Thread(
        target=httpd.serve_forever, name="repro-service-http", daemon=True
    )
    server_thread.start()
    logger.info("listening on http://%s:%d", host, httpd.server_address[1])
    print(f"repro service listening on http://{host}:{httpd.server_address[1]}",
          flush=True)
    try:
        stop_event.wait()
    except KeyboardInterrupt:
        pass
    logger.info("shutdown requested; draining")
    # Stop accepting first, then drain the service: queued requests get
    # typed rejections, in-flight ones finish or degrade to anytime.
    httpd.shutdown()
    server_thread.join(timeout=10.0)
    httpd.server_close()
    service.drain()
    logger.info("drained; exiting")
    return 0
