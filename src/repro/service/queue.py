"""Bounded admission queue: accept fast, reject fast, never queue unboundedly.

Overload protection for the assessment service (§2.1's provider runs this
continuously, so it must survive demand spikes). The queue holds at most
``capacity`` tickets; a submit against a full queue raises the *typed*
:class:`~repro.util.errors.AdmissionRejected` immediately — the client
learns within microseconds that it should back off, instead of parking a
request that would time out anyway. Draining flips the queue read-only:
new submits are rejected with ``reason="draining"`` and the still-queued
tickets are handed back to the caller for rejection, so a SIGTERM never
strands work.
"""

from __future__ import annotations

import collections
import threading

from repro.util.errors import AdmissionRejected
from repro.util.metrics import MetricsRegistry


class AdmissionQueue:
    """A thread-safe bounded FIFO of request tickets.

    All mutation happens under one lock; ``pop`` blocks on a condition
    variable so scheduler workers sleep instead of spinning. Metrics
    (queue depth gauge, admitted/shed counters) are recorded when a
    registry is supplied.
    """

    def __init__(self, capacity: int, metrics: MetricsRegistry | None = None):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._metrics = metrics
        self._items: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._draining = False
        self._stopped = False

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def submit(self, ticket) -> None:
        """Admit a ticket or raise :class:`AdmissionRejected` immediately."""
        with self._lock:
            if self._stopped:
                raise AdmissionRejected(
                    "service is stopped", reason="stopped",
                    queue_depth=len(self._items), capacity=self.capacity,
                )
            if self._draining:
                raise AdmissionRejected(
                    "service is draining and accepts no new requests",
                    reason="draining",
                    queue_depth=len(self._items), capacity=self.capacity,
                )
            if len(self._items) >= self.capacity:
                if self._metrics is not None:
                    self._metrics.incr("service/shed")
                raise AdmissionRejected(
                    f"admission queue is full ({self.capacity} queued); "
                    "retry with backoff",
                    reason="queue_full",
                    queue_depth=len(self._items), capacity=self.capacity,
                )
            self._items.append(ticket)
            if self._metrics is not None:
                self._metrics.incr("service/admitted")
                self._metrics.set_gauge("service/queue_depth", len(self._items))
            self._not_empty.notify()

    def restore(self, tickets) -> None:
        """Re-admit recovered tickets ahead of new work, bypassing capacity.

        Crash recovery must never shed journaled requests — they were
        already admitted (and acknowledged) by a previous process, so the
        capacity check does not apply to them. They go to the *front* of
        the queue in their original order to preserve FIFO fairness
        across the restart.
        """
        with self._lock:
            if self._stopped or self._draining:
                raise AdmissionRejected(
                    "cannot restore tickets into a stopped/draining queue",
                    reason="stopped" if self._stopped else "draining",
                    queue_depth=len(self._items), capacity=self.capacity,
                )
            self._items.extendleft(reversed(list(tickets)))
            if self._metrics is not None:
                self._metrics.set_gauge("service/queue_depth", len(self._items))
            self._not_empty.notify_all()

    def pop(self, timeout: float | None = None):
        """Take the oldest ticket, or ``None`` on timeout / stop."""
        with self._lock:
            while not self._items:
                if self._stopped:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            ticket = self._items.popleft()
            if self._metrics is not None:
                self._metrics.set_gauge("service/queue_depth", len(self._items))
            return ticket

    # ------------------------------------------------------------------

    def drain(self) -> list:
        """Stop admitting; return the still-queued tickets for rejection.

        In-flight requests (already popped by a worker) are unaffected —
        the graceful-shutdown contract is "in-flight finish, queued get a
        typed rejection".
        """
        with self._lock:
            self._draining = True
            stranded = list(self._items)
            self._items.clear()
            if self._metrics is not None:
                self._metrics.set_gauge("service/queue_depth", 0)
            self._not_empty.notify_all()
            return stranded

    def stop(self) -> None:
        """Final shutdown: wake every blocked ``pop`` with ``None``."""
        with self._lock:
            self._stopped = True
            self._draining = True
            self._not_empty.notify_all()
