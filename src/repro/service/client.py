"""Clients for the assessment service.

:class:`ServiceClient` wraps an in-process
:class:`~repro.service.scheduler.AssessmentService` — the zero-transport
path for tests and embedded use. :class:`HttpServiceClient` speaks the
HTTP protocol of :mod:`repro.service.server` over stdlib ``urllib`` (no
dependencies), converting the typed error responses back into the same
exceptions the in-process path raises, so callers handle overload and
validation identically either way.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.service.requests import AssessRequest, SearchRequest, ServiceResponse
from repro.service.scheduler import AssessmentService
from repro.util.errors import AdmissionRejected, ReproError, ValidationError


class ServiceClient:
    """In-process client: typed requests in, :class:`ServiceResponse` out."""

    def __init__(self, service: AssessmentService):
        self.service = service

    def assess(
        self,
        hosts,
        k: int,
        rounds: int | None = None,
        deadline_seconds: float | None = None,
        timeout: float | None = None,
    ) -> ServiceResponse:
        request = AssessRequest(
            hosts=tuple(hosts),
            k=k,
            rounds=rounds,
            deadline_seconds=deadline_seconds,
        )
        return self.service.assess(request, timeout=timeout)

    def search(
        self,
        k: int,
        n: int,
        max_seconds: float = 5.0,
        desired_reliability: float = 1.0,
        rounds: int | None = None,
        deadline_seconds: float | None = None,
        timeout: float | None = None,
    ) -> ServiceResponse:
        request = SearchRequest(
            k=k,
            n=n,
            max_seconds=max_seconds,
            desired_reliability=desired_reliability,
            rounds=rounds,
            deadline_seconds=deadline_seconds,
        )
        return self.service.search(request, timeout=timeout)

    def cancel(self, request_id: str) -> bool:
        return self.service.cancel(request_id)


class HttpServiceClient:
    """Minimal stdlib HTTP client for a running ``repro serve`` process."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                document = json.loads(exc.read().decode("utf-8"))
            except Exception:
                document = {"error": "http", "message": str(exc)}
            self._raise_typed(exc.code, document)
            raise  # unreachable; _raise_typed always raises

    @staticmethod
    def _raise_typed(status: int, document: dict) -> None:
        """Rehydrate the service's typed errors from an HTTP error body."""
        if status == 400 and document.get("error") == "validation":
            raise ValidationError(
                [(e["field"], e["message"]) for e in document.get("errors", [])]
            )
        if status == 503 and document.get("error") == "admission":
            raise AdmissionRejected(
                document.get("message", "request rejected"),
                reason=document.get("reason", "queue_full"),
                queue_depth=document.get("queue_depth"),
                capacity=document.get("capacity"),
            )
        raise ReproError(
            f"service returned HTTP {status}: "
            f"{document.get('message', document)}"
        )

    # ------------------------------------------------------------------

    def assess(
        self,
        hosts,
        k: int,
        rounds: int | None = None,
        deadline_seconds: float | None = None,
    ) -> dict:
        payload: dict = {"hosts": list(hosts), "k": k}
        if rounds is not None:
            payload["rounds"] = rounds
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        return self._request("POST", "/assess", payload)

    def search(self, k: int, n: int, **options) -> dict:
        payload = {"k": k, "n": n}
        payload.update(options)
        return self._request("POST", "/search", payload)

    def cancel(self, request_id: str) -> dict:
        return self._request("POST", f"/cancel/{request_id}")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def readyz(self) -> dict:
        return self._request("GET", "/readyz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")
