"""Clients for the assessment service.

:class:`ServiceClient` wraps an in-process
:class:`~repro.service.scheduler.AssessmentService` — the zero-transport
path for tests and embedded use. :class:`HttpServiceClient` speaks the
HTTP protocol of :mod:`repro.service.server` over stdlib ``urllib`` (no
dependencies), converting the typed error responses back into the same
exceptions the in-process path raises, so callers handle overload and
validation identically either way.

The HTTP client retries transient failures — connection errors while the
server restarts, and 503 admission sheds — with capped exponential
backoff plus jitter. Retrying is only safe when it cannot double-execute
work, so a POST is retried after a *connection* error only when it
carries an idempotency key (the service deduplicates it); reads and
cancels are always safe to retry, and an admission shed is safe by
definition (the request was never admitted).
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request

from repro.service.requests import AssessRequest, SearchRequest, ServiceResponse
from repro.service.scheduler import AssessmentService
from repro.util.errors import AdmissionRejected, ReproError, ValidationError


class ServiceClient:
    """In-process client: typed requests in, :class:`ServiceResponse` out."""

    def __init__(self, service: AssessmentService):
        self.service = service

    def assess(
        self,
        hosts,
        k: int,
        rounds: int | None = None,
        deadline_seconds: float | None = None,
        idempotency_key: str | None = None,
        timeout: float | None = None,
    ) -> ServiceResponse:
        request = AssessRequest(
            hosts=tuple(hosts),
            k=k,
            rounds=rounds,
            deadline_seconds=deadline_seconds,
            idempotency_key=idempotency_key,
        )
        return self.service.assess(request, timeout=timeout)

    def search(
        self,
        k: int,
        n: int,
        max_seconds: float = 5.0,
        desired_reliability: float = 1.0,
        rounds: int | None = None,
        deadline_seconds: float | None = None,
        idempotency_key: str | None = None,
        timeout: float | None = None,
    ) -> ServiceResponse:
        request = SearchRequest(
            k=k,
            n=n,
            max_seconds=max_seconds,
            desired_reliability=desired_reliability,
            rounds=rounds,
            deadline_seconds=deadline_seconds,
            idempotency_key=idempotency_key,
        )
        return self.service.search(request, timeout=timeout)

    def cancel(self, request_id: str) -> bool:
        return self.service.cancel(request_id)


class HttpServiceClient:
    """Minimal stdlib HTTP client for a running ``repro serve`` process.

    Attributes:
        max_attempts: Total tries per logical request (first + retries).
        backoff_seconds: Base delay; attempt ``i`` sleeps about
            ``backoff_seconds * 2**i`` plus up to 25% jitter, capped at
            ``max_backoff_seconds``.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        max_attempts: int = 3,
        backoff_seconds: float = 0.2,
        max_backoff_seconds: float = 5.0,
        sleep=time.sleep,
        rng: random.Random | int | None = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_seconds = backoff_seconds
        self.max_backoff_seconds = max_backoff_seconds
        self._sleep = sleep
        # An int seeds a private stream so retry timing is reproducible
        # (drills and tests); None keeps the unseeded production default.
        if isinstance(rng, random.Random):
            self._rng = rng
        else:
            self._rng = random.Random(rng) if rng is not None else random.Random()

    # ------------------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with jitter for the given 0-based attempt."""
        base = min(self.max_backoff_seconds, self.backoff_seconds * (2**attempt))
        return base * (1.0 + 0.25 * self._rng.random())

    @staticmethod
    def _retriable_connection(method: str, path: str, payload) -> bool:
        """May this request be re-sent after a *connection* failure?

        A dropped connection leaves it unknown whether the server acted.
        GETs and cancels are idempotent by nature; a POST is only safe
        when it carries an idempotency key the service deduplicates on.
        """
        if method == "GET" or path.startswith("/cancel/"):
            return True
        return bool(payload and payload.get("idempotency_key"))

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        attempts = 0
        while True:
            request = urllib.request.Request(
                url,
                data=data,
                method=method,
                headers={"Content-Type": "application/json"} if data else {},
            )
            attempts += 1
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                    return json.loads(reply.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                try:
                    document = json.loads(exc.read().decode("utf-8"))
                except Exception:
                    document = {"error": "http", "message": str(exc)}
                # Only an admission shed is worth backing off for — the
                # request was never admitted, so a retry cannot duplicate
                # work. Other HTTP errors (validation, internal) are
                # deterministic and re-raise immediately.
                shed = exc.code == 503 and document.get("error") == "admission"
                if shed and attempts < self.max_attempts:
                    self._sleep(self._backoff(attempts - 1))
                    continue
                if shed and attempts > 1:
                    document = dict(document)
                    document["message"] = (
                        f"{document.get('message', 'request rejected')} "
                        f"(after {attempts} attempts)"
                    )
                self._raise_typed(exc.code, document)
                raise  # unreachable; _raise_typed always raises
            except (
                urllib.error.URLError,
                ConnectionError,
                http.client.HTTPException,
                TimeoutError,
            ) as exc:
                # ``URLError`` only covers failures *opening* the
                # connection. A worker failover can reset the socket
                # mid-response, which surfaces as a raw
                # ``ConnectionResetError`` / ``RemoteDisconnected`` from
                # ``reply.read()`` — equally transient, equally safe to
                # retry under an idempotency key.
                if (
                    attempts < self.max_attempts
                    and self._retriable_connection(method, path, payload)
                ):
                    self._sleep(self._backoff(attempts - 1))
                    continue
                raise ReproError(
                    f"service unreachable at {url} after {attempts} "
                    f"attempt(s): {getattr(exc, 'reason', exc)}"
                ) from exc

    @staticmethod
    def _raise_typed(status: int, document: dict) -> None:
        """Rehydrate the service's typed errors from an HTTP error body."""
        if status == 400 and document.get("error") == "validation":
            raise ValidationError(
                [(e["field"], e["message"]) for e in document.get("errors", [])]
            )
        if status == 503 and document.get("error") == "admission":
            raise AdmissionRejected(
                document.get("message", "request rejected"),
                reason=document.get("reason", "queue_full"),
                queue_depth=document.get("queue_depth"),
                capacity=document.get("capacity"),
            )
        raise ReproError(
            f"service returned HTTP {status}: "
            f"{document.get('message', document)}"
        )

    # ------------------------------------------------------------------

    def assess(
        self,
        hosts,
        k: int,
        rounds: int | None = None,
        deadline_seconds: float | None = None,
        idempotency_key: str | None = None,
    ) -> dict:
        payload: dict = {"hosts": list(hosts), "k": k}
        if rounds is not None:
            payload["rounds"] = rounds
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        if idempotency_key is not None:
            payload["idempotency_key"] = idempotency_key
        return self._request("POST", "/assess", payload)

    def search(self, k: int, n: int, **options) -> dict:
        payload = {"k": k, "n": n}
        payload.update(options)
        return self._request("POST", "/search", payload)

    def cancel(self, request_id: str) -> dict:
        return self._request("POST", f"/cancel/{request_id}")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def readyz(self) -> dict:
        return self._request("GET", "/readyz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")
