"""JSON serialization of plans, estimates and reports.

A provider running reCloud as a service needs to persist and exchange
its artifacts: the plan handed to the scheduler, the reliability estimate
shown to the developer (service-quality auditing and compliance is one of
the paper's stated reasons for *quantitative* scores), and risk reports.
This module provides stable, versioned JSON encodings with full
round-trip support for the value types and validation on load.

Numpy payloads (the per-round result lists) are deliberately excluded:
they are reproducible from the recorded seeds and would dominate the
artifact size.
"""

from __future__ import annotations

import json
from typing import Any

from repro.app.structure import (
    ApplicationStructure,
    ComponentSpec,
    ReachabilityRequirement,
)
from repro.core.plan import DeploymentPlan
from repro.core.result import AssessmentResult, SearchResult
from repro.core.risk import RiskEntry
from repro.sampling.statistics import ReliabilityEstimate
from repro.util.errors import ConfigurationError

#: Format version stamped into every artifact.
FORMAT_VERSION = 1


def _artifact(kind: str, payload: dict) -> dict:
    return {"format": kind, "version": FORMAT_VERSION, **payload}


def _check(document: dict, kind: str) -> None:
    if not isinstance(document, dict):
        raise ConfigurationError(f"expected a JSON object for {kind}")
    if document.get("format") != kind:
        raise ConfigurationError(
            f"expected format {kind!r}, got {document.get('format')!r}"
        )
    if document.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported {kind} version {document.get('version')!r}"
        )


# ----------------------------------------------------------------------
# Deployment plans
# ----------------------------------------------------------------------


def plan_to_dict(plan: DeploymentPlan) -> dict:
    """Encode a plan as a JSON-ready dict."""
    return _artifact(
        "deployment-plan",
        {
            "placements": [
                {"component": component, "hosts": list(hosts)}
                for component, hosts in plan.placements
            ]
        },
    )


def plan_from_dict(document: dict) -> DeploymentPlan:
    """Decode a plan, re-validating distinctness."""
    _check(document, "deployment-plan")
    try:
        mapping = {
            entry["component"]: entry["hosts"]
            for entry in document["placements"]
        }
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed deployment-plan document: {exc}") from exc
    return DeploymentPlan.from_mapping(mapping)


# ----------------------------------------------------------------------
# Application structures
# ----------------------------------------------------------------------


def structure_to_dict(structure: ApplicationStructure) -> dict:
    return _artifact(
        "application-structure",
        {
            "name": structure.name,
            "components": [
                {"name": spec.name, "instances": spec.instances}
                for spec in structure.components
            ],
            "requirements": [
                {
                    "component": req.component,
                    "source": req.source,
                    "min_reachable": req.min_reachable,
                }
                for req in structure.requirements
            ],
        },
    )


def structure_from_dict(document: dict) -> ApplicationStructure:
    _check(document, "application-structure")
    try:
        components = [
            ComponentSpec(entry["name"], entry["instances"])
            for entry in document["components"]
        ]
        requirements = [
            ReachabilityRequirement(
                entry["component"], entry["source"], entry["min_reachable"]
            )
            for entry in document["requirements"]
        ]
        name = document["name"]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(
            f"malformed application-structure document: {exc}"
        ) from exc
    return ApplicationStructure(components, requirements, name=name)


# ----------------------------------------------------------------------
# Estimates and results
# ----------------------------------------------------------------------


def estimate_to_dict(estimate: ReliabilityEstimate) -> dict:
    return _artifact(
        "reliability-estimate",
        {
            "score": estimate.score,
            "variance": estimate.variance,
            "confidence_interval_width": estimate.confidence_interval_width,
            "rounds": estimate.rounds,
            "reliable_rounds": estimate.reliable_rounds,
        },
    )


def estimate_from_dict(document: dict) -> ReliabilityEstimate:
    _check(document, "reliability-estimate")
    try:
        return ReliabilityEstimate(
            score=float(document["score"]),
            variance=float(document["variance"]),
            confidence_interval_width=float(document["confidence_interval_width"]),
            rounds=int(document["rounds"]),
            reliable_rounds=int(document["reliable_rounds"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"malformed reliability-estimate document: {exc}"
        ) from exc


def assessment_to_dict(result: AssessmentResult) -> dict:
    """Encode an assessment (without the raw per-round list)."""
    return _artifact(
        "assessment-result",
        {
            "plan": plan_to_dict(result.plan),
            "estimate": estimate_to_dict(result.estimate),
            "sampled_components": result.sampled_components,
            "elapsed_seconds": result.elapsed_seconds,
        },
    )


def search_result_to_dict(result: SearchResult) -> dict:
    """Encode a search outcome (the provider's report to the developer)."""
    return _artifact(
        "search-result",
        {
            "satisfied": result.satisfied,
            "elapsed_seconds": result.elapsed_seconds,
            "iterations": result.iterations,
            "plans_assessed": result.plans_assessed,
            "plans_skipped_symmetric": result.plans_skipped_symmetric,
            "best_plan": plan_to_dict(result.best_plan),
            "best_estimate": estimate_to_dict(result.best_assessment.estimate),
        },
    )


def risk_report_to_dict(entries: list[RiskEntry]) -> dict:
    return _artifact(
        "risk-report",
        {
            "entries": [
                {
                    "component_id": e.component_id,
                    "component_type": e.component_type,
                    "failure_probability": e.failure_probability,
                    "instances_lost": e.instances_lost,
                    "components_degraded": list(e.components_degraded),
                    "application_down": e.application_down,
                    "expected_loss": e.expected_loss,
                }
                for e in entries
            ]
        },
    )


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------


def dump(document: dict, path) -> None:
    """Write any artifact dict as pretty JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load(path) -> Any:
    """Read a JSON artifact from disk."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
