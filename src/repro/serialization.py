"""JSON serialization of plans, estimates and reports.

A provider running reCloud as a service needs to persist and exchange
its artifacts: the plan handed to the scheduler, the reliability estimate
shown to the developer (service-quality auditing and compliance is one of
the paper's stated reasons for *quantitative* scores), and risk reports.
This module provides stable, versioned JSON encodings with full
round-trip support for the value types and validation on load.

Numpy payloads (the per-round result lists) are deliberately excluded:
they are reproducible from the recorded seeds and would dominate the
artifact size.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.app.structure import (
    ApplicationStructure,
    ComponentSpec,
    ReachabilityRequirement,
)
from repro.core.plan import DeploymentPlan, ZoneConstraints
from repro.core.result import (
    AssessmentResult,
    PortionFailure,
    RuntimeMetadata,
    SearchRecord,
    SearchResult,
)
from repro.core.risk import RiskEntry
from repro.core.search import SearchSpec, SearchState
from repro.sampling.statistics import ReliabilityEstimate
from repro.util.errors import ConfigurationError

#: Format version stamped into every artifact.
FORMAT_VERSION = 1


def _artifact(kind: str, payload: dict) -> dict:
    return {"format": kind, "version": FORMAT_VERSION, **payload}


def _check(document: dict, kind: str) -> None:
    if not isinstance(document, dict):
        raise ConfigurationError(f"expected a JSON object for {kind}")
    if document.get("format") != kind:
        raise ConfigurationError(
            f"expected format {kind!r}, got {document.get('format')!r}"
        )
    if document.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported {kind} version {document.get('version')!r}"
        )


# ----------------------------------------------------------------------
# Deployment plans
# ----------------------------------------------------------------------


def plan_to_dict(plan: DeploymentPlan) -> dict:
    """Encode a plan as a JSON-ready dict."""
    return _artifact(
        "deployment-plan",
        {
            "placements": [
                {"component": component, "hosts": list(hosts)}
                for component, hosts in plan.placements
            ]
        },
    )


def plan_from_dict(document: dict) -> DeploymentPlan:
    """Decode a plan, re-validating distinctness."""
    _check(document, "deployment-plan")
    try:
        mapping = {
            entry["component"]: entry["hosts"]
            for entry in document["placements"]
        }
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed deployment-plan document: {exc}") from exc
    return DeploymentPlan.from_mapping(mapping)


# ----------------------------------------------------------------------
# Application structures
# ----------------------------------------------------------------------


def structure_to_dict(structure: ApplicationStructure) -> dict:
    return _artifact(
        "application-structure",
        {
            "name": structure.name,
            "components": [
                {"name": spec.name, "instances": spec.instances}
                for spec in structure.components
            ],
            "requirements": [
                {
                    "component": req.component,
                    "source": req.source,
                    "min_reachable": req.min_reachable,
                }
                for req in structure.requirements
            ],
        },
    )


def structure_from_dict(document: dict) -> ApplicationStructure:
    _check(document, "application-structure")
    try:
        components = [
            ComponentSpec(entry["name"], entry["instances"])
            for entry in document["components"]
        ]
        requirements = [
            ReachabilityRequirement(
                entry["component"], entry["source"], entry["min_reachable"]
            )
            for entry in document["requirements"]
        ]
        name = document["name"]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(
            f"malformed application-structure document: {exc}"
        ) from exc
    return ApplicationStructure(components, requirements, name=name)


# ----------------------------------------------------------------------
# Estimates and results
# ----------------------------------------------------------------------


def estimate_to_dict(estimate: ReliabilityEstimate) -> dict:
    return _artifact(
        "reliability-estimate",
        {
            "score": estimate.score,
            "variance": estimate.variance,
            "confidence_interval_width": estimate.confidence_interval_width,
            "rounds": estimate.rounds,
            "reliable_rounds": estimate.reliable_rounds,
            "exact": estimate.exact,
        },
    )


def estimate_from_dict(document: dict) -> ReliabilityEstimate:
    _check(document, "reliability-estimate")
    try:
        return ReliabilityEstimate(
            score=float(document["score"]),
            variance=float(document["variance"]),
            confidence_interval_width=float(document["confidence_interval_width"]),
            rounds=int(document["rounds"]),
            reliable_rounds=int(document["reliable_rounds"]),
            # Absent in pre-analytic artifacts: those are always sampled.
            exact=bool(document.get("exact", False)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"malformed reliability-estimate document: {exc}"
        ) from exc


def _runtime_to_dict(runtime: RuntimeMetadata) -> dict:
    payload = {
        "backend": runtime.backend,
        "workers": runtime.workers,
        "portion_seeds": list(runtime.portion_seeds),
        "retries": runtime.retries,
        "pool_restarts": runtime.pool_restarts,
        "recovered_inline": runtime.recovered_inline,
        "dropped_portions": runtime.dropped_portions,
        "dropped_rounds": runtime.dropped_rounds,
        "cancelled": runtime.cancelled,
        "recovered": runtime.recovered,
        "failures": [
            {
                "portion": f.portion,
                "attempt": f.attempt,
                "kind": f.kind,
                "message": f.message,
            }
            for f in runtime.failures
        ],
    }
    if runtime.profile is not None:
        payload["profile"] = [[key, value] for key, value in runtime.profile]
    return payload


def _runtime_from_dict(payload: dict) -> RuntimeMetadata:
    profile = payload.get("profile")
    return RuntimeMetadata(
        backend=str(payload["backend"]),
        workers=int(payload["workers"]),
        portion_seeds=tuple(int(s) for s in payload["portion_seeds"]),
        retries=int(payload["retries"]),
        pool_restarts=int(payload["pool_restarts"]),
        recovered_inline=int(payload["recovered_inline"]),
        dropped_portions=int(payload["dropped_portions"]),
        dropped_rounds=int(payload["dropped_rounds"]),
        cancelled=bool(payload.get("cancelled", False)),
        recovered=bool(payload.get("recovered", False)),
        failures=tuple(
            PortionFailure(
                portion=int(f["portion"]),
                attempt=int(f["attempt"]),
                kind=str(f["kind"]),
                message=str(f["message"]),
            )
            for f in payload["failures"]
        ),
        profile=(
            None
            if profile is None
            else tuple((str(key), float(value)) for key, value in profile)
        ),
    )


def assessment_to_dict(result: AssessmentResult) -> dict:
    """Encode an assessment (without the raw per-round list)."""
    payload = {
        "plan": plan_to_dict(result.plan),
        "estimate": estimate_to_dict(result.estimate),
        "sampled_components": result.sampled_components,
        "elapsed_seconds": result.elapsed_seconds,
    }
    if result.runtime is not None:
        payload["runtime"] = _runtime_to_dict(result.runtime)
    return _artifact("assessment-result", payload)


def assessment_from_dict(document: dict) -> AssessmentResult:
    """Decode an assessment.

    The raw per-round result list is never serialized (it is reproducible
    from the recorded seeds), so the decoded result carries an empty
    ``per_round`` vector; the estimate, plan and runtime metadata
    (including any profiling snapshot) round-trip.
    """
    _check(document, "assessment-result")
    try:
        runtime = document.get("runtime")
        return AssessmentResult(
            plan=plan_from_dict(document["plan"]),
            estimate=estimate_from_dict(document["estimate"]),
            per_round=np.zeros(0, dtype=bool),
            sampled_components=int(document["sampled_components"]),
            elapsed_seconds=float(document["elapsed_seconds"]),
            runtime=None if runtime is None else _runtime_from_dict(runtime),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"malformed assessment-result document: {exc}"
        ) from exc


def search_result_to_dict(result: SearchResult) -> dict:
    """Encode a search outcome (the provider's report to the developer)."""
    return _artifact(
        "search-result",
        {
            "satisfied": result.satisfied,
            "elapsed_seconds": result.elapsed_seconds,
            "iterations": result.iterations,
            "plans_assessed": result.plans_assessed,
            "plans_skipped_symmetric": result.plans_skipped_symmetric,
            "candidates_proposed": result.candidates_proposed,
            "batches_scored": result.batches_scored,
            "best_plan": plan_to_dict(result.best_plan),
            "best_estimate": estimate_to_dict(result.best_assessment.estimate),
        },
    )


# ----------------------------------------------------------------------
# Search checkpoints (the resumable mid-anneal state)
# ----------------------------------------------------------------------


def zone_constraints_to_dict(constraints: ZoneConstraints) -> dict:
    return {
        "primary_zone": constraints.primary_zone,
        "min_outside_primary": constraints.min_outside_primary,
        "pinned_zones": [
            {"component": component, "zones": list(zones)}
            for component, zones in constraints.pinned_zones
        ],
        "spread_components": list(constraints.spread_components),
    }


def zone_constraints_from_dict(payload: dict) -> ZoneConstraints:
    try:
        return ZoneConstraints(
            primary_zone=payload["primary_zone"],
            min_outside_primary=int(payload["min_outside_primary"]),
            pinned_zones=tuple(
                (entry["component"], tuple(entry["zones"]))
                for entry in payload["pinned_zones"]
            ),
            spread_components=tuple(payload["spread_components"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"malformed zone-constraints payload: {exc}"
        ) from exc


def search_spec_to_dict(spec: SearchSpec) -> dict:
    return _artifact(
        "search-spec",
        {
            "structure": structure_to_dict(spec.structure),
            "desired_reliability": spec.desired_reliability,
            "max_seconds": spec.max_seconds,
            "forbid_shared_rack": spec.forbid_shared_rack,
            "desired_measure": spec.desired_measure,
            "max_iterations": spec.max_iterations,
            "zone_constraints": (
                None
                if spec.zone_constraints is None
                else zone_constraints_to_dict(spec.zone_constraints)
            ),
        },
    )


def search_spec_from_dict(document: dict) -> SearchSpec:
    _check(document, "search-spec")
    try:
        # .get(): pre-zone checkpoints (same format version) lack the
        # constraints field; their searches were unconstrained.
        zone_constraints = document.get("zone_constraints")
        return SearchSpec(
            structure=structure_from_dict(document["structure"]),
            desired_reliability=float(document["desired_reliability"]),
            max_seconds=float(document["max_seconds"]),
            forbid_shared_rack=bool(document["forbid_shared_rack"]),
            desired_measure=(
                None
                if document["desired_measure"] is None
                else float(document["desired_measure"])
            ),
            max_iterations=(
                None
                if document["max_iterations"] is None
                else int(document["max_iterations"])
            ),
            zone_constraints=(
                None
                if zone_constraints is None
                else zone_constraints_from_dict(zone_constraints)
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed search-spec document: {exc}") from exc


def _search_record_to_dict(record: SearchRecord) -> dict:
    return {
        "iteration": record.iteration,
        "elapsed_seconds": record.elapsed_seconds,
        "temperature": record.temperature,
        "candidate_score": record.candidate_score,
        "current_score": record.current_score,
        "best_score": record.best_score,
        "accepted": record.accepted,
        "skipped_symmetric": record.skipped_symmetric,
    }


def _search_record_from_dict(entry: dict) -> SearchRecord:
    return SearchRecord(
        iteration=int(entry["iteration"]),
        elapsed_seconds=float(entry["elapsed_seconds"]),
        temperature=float(entry["temperature"]),
        candidate_score=float(entry["candidate_score"]),
        current_score=float(entry["current_score"]),
        best_score=float(entry["best_score"]),
        accepted=bool(entry["accepted"]),
        skipped_symmetric=bool(entry["skipped_symmetric"]),
    )


def search_state_to_dict(state: SearchState) -> dict:
    """Encode a mid-search checkpoint (§3.3 made crash-tolerant).

    Everything the annealing loop needs to continue *exactly* where it
    stopped: plans, assessments (estimates only — per-round lists are
    reproducible from the seeds), counters, the consumed budget, both RNG
    states, the common-random-numbers master seed and the acceptance
    trace. Numpy bit-generator states serialize as plain (big) integers.
    """
    return _artifact(
        "search-checkpoint",
        {
            "spec": search_spec_to_dict(state.spec),
            "iterations": state.iterations,
            "plans_assessed": state.plans_assessed,
            "skipped_symmetric": state.skipped_symmetric,
            "skipped_resources": state.skipped_resources,
            "batch_size": state.batch_size,
            "candidates_proposed": state.candidates_proposed,
            "batches_scored": state.batches_scored,
            "elapsed_seconds": state.elapsed_seconds,
            "current_plan": plan_to_dict(state.current_plan),
            "current_assessment": assessment_to_dict(state.current),
            "current_measure": state.current_measure,
            "best_plan": plan_to_dict(state.best_plan),
            "best_assessment": assessment_to_dict(state.best),
            "best_measure": state.best_measure,
            "search_rng_state": state.search_rng_state,
            "assessor_rng_state": state.assessor_rng_state,
            "crn_master_seed": state.crn_master_seed,
            "trace": [_search_record_to_dict(r) for r in state.trace],
        },
    )


def search_state_from_dict(document: dict) -> SearchState:
    """Decode a search checkpoint back into a resumable state."""
    _check(document, "search-checkpoint")
    try:
        return SearchState(
            spec=search_spec_from_dict(document["spec"]),
            iterations=int(document["iterations"]),
            plans_assessed=int(document["plans_assessed"]),
            skipped_symmetric=int(document["skipped_symmetric"]),
            skipped_resources=int(document["skipped_resources"]),
            # .get(): pre-batch checkpoints (same format version) lack
            # the batched fields; their loops were all batch_size=1.
            batch_size=int(document.get("batch_size", 1)),
            candidates_proposed=int(document.get("candidates_proposed", 0)),
            batches_scored=int(document.get("batches_scored", 0)),
            elapsed_seconds=float(document["elapsed_seconds"]),
            current_plan=plan_from_dict(document["current_plan"]),
            current=assessment_from_dict(document["current_assessment"]),
            current_measure=float(document["current_measure"]),
            best_plan=plan_from_dict(document["best_plan"]),
            best=assessment_from_dict(document["best_assessment"]),
            best_measure=float(document["best_measure"]),
            search_rng_state=document["search_rng_state"],
            assessor_rng_state=document["assessor_rng_state"],
            crn_master_seed=(
                None
                if document["crn_master_seed"] is None
                else int(document["crn_master_seed"])
            ),
            trace=[_search_record_from_dict(r) for r in document["trace"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"malformed search-checkpoint document: {exc}"
        ) from exc


def risk_report_to_dict(entries: list[RiskEntry]) -> dict:
    return _artifact(
        "risk-report",
        {
            "entries": [
                {
                    "component_id": e.component_id,
                    "component_type": e.component_type,
                    "failure_probability": e.failure_probability,
                    "instances_lost": e.instances_lost,
                    "components_degraded": list(e.components_degraded),
                    "application_down": e.application_down,
                    "expected_loss": e.expected_loss,
                }
                for e in entries
            ]
        },
    )


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------


#: Key holding the integrity checksum inside a checksummed artifact.
CHECKSUM_KEY = "sha256"


def fsync_dir(directory) -> bool:
    """Flush a directory's entry table to disk; best-effort by design.

    ``os.replace`` makes a rename atomic but *not* durable — until the
    parent directory's metadata is fsync'd, a power loss can roll the
    rename back and resurrect the old file (or lose a newly created
    one). POSIX allows opening a directory read-only purely to fsync it;
    platforms where that fails (Windows, some network filesystems) raise,
    in which case this helper quietly reports ``False`` — the write is
    still atomic, just not power-loss durable, which is the best those
    platforms offer.
    """
    import os

    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(fd)
        return True
    except OSError:
        return False
    finally:
        os.close(fd)


def _payload_checksum(document: dict) -> str:
    """SHA-256 over the canonical encoding of everything but the checksum."""
    import hashlib

    payload = {k: v for k, v in document.items() if k != CHECKSUM_KEY}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def dump(document: dict, path, checksum: bool = False) -> None:
    """Write any artifact dict as pretty JSON, atomically and durably.

    The document lands under a unique temporary name in the target
    directory, is fsynced, and is then renamed into place — a crash
    mid-write (the very scenario checkpoints exist for) can never leave
    a truncated or half-old artifact behind, and a concurrent dump to
    the same path cannot corrupt another dump's temp file. The parent
    directory is fsync'd after the rename (see :func:`fsync_dir`): the
    rename itself is atomic either way, but only the directory fsync
    makes it survive power loss.

    ``checksum=True`` embeds a SHA-256 of the canonical payload under
    ``"sha256"``; :func:`load` verifies it, so silent corruption of a
    checkpoint (bad disk, truncated copy, hand-edit) is detected at
    resume time instead of producing a subtly wrong search state.
    """
    import os
    import tempfile

    path = os.fspath(path)
    if checksum:
        document = dict(document)
        document[CHECKSUM_KEY] = _payload_checksum(document)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load(path, verify: bool = True) -> Any:
    """Read a JSON artifact from disk, verifying any embedded checksum.

    A document carrying a ``"sha256"`` key (written via
    ``dump(..., checksum=True)``) is re-hashed; a mismatch raises
    :class:`ConfigurationError` — a corrupt checkpoint must fail loudly
    at load time, not resume into a silently wrong state. Artifacts
    without a checksum load as before. ``verify=False`` skips the check
    (for forensics on a corrupt file).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"artifact {path!r} is not valid JSON (corrupt or truncated): {exc}"
        ) from exc
    if isinstance(document, dict) and CHECKSUM_KEY in document:
        expected = document.pop(CHECKSUM_KEY)
        if verify:
            actual = _payload_checksum(document)
            if actual != expected:
                raise ConfigurationError(
                    f"artifact {path!r} failed checksum verification "
                    f"(expected {expected[:12]}..., got {actual[:12]}...); "
                    "the file is corrupt"
                )
    return document
