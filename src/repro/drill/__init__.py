"""Deterministic whole-stack failure drills (FoundationDB/Jepsen style).

``repro.drill`` drives the full service substrate — admission, journal,
result store, sharded workers with heartbeat failover, and the
redeployment controller's commit point — through seeded, randomized
fault schedules, then checks the system's durability contracts as
explicit invariants and shrinks any failing schedule to a minimal
reproducer. See ``repro drill --help`` and the DESIGN.md section
"failure-drill engine".

Import layering: the production durability modules import
``repro.drill.faultpoints`` for their (no-op) seams, and this package's
heavier halves (sim, engine) import those same production modules — so
this ``__init__`` stays import-light and loads the engine lazily.
"""

from repro.drill.faultpoints import (
    CATALOG,
    FAULT_CATALOG,
    FaultCommand,
    FaultPoints,
    SimulatedCrash,
    arm,
    armed,
    disarm,
    fault_hit,
)
from repro.drill.schedule import (
    SEEDED_BUGS,
    FaultEvent,
    FaultSchedule,
    random_schedule,
)

__all__ = [
    "CATALOG",
    "FAULT_CATALOG",
    "FaultCommand",
    "FaultPoints",
    "SimulatedCrash",
    "arm",
    "armed",
    "disarm",
    "fault_hit",
    "SEEDED_BUGS",
    "FaultEvent",
    "FaultSchedule",
    "random_schedule",
]


def __getattr__(name):
    # Lazy: the engine imports the service stack, which imports the
    # fault seams above — eager loading here would be a cycle.
    if name in ("run_drill", "run_campaign", "replay_reproducer"):
        from repro.drill import engine

        return getattr(engine, name)
    if name == "shrink_schedule":
        from repro.drill.shrink import shrink_schedule

        return shrink_schedule
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
