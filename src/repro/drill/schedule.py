"""Fault schedules: the serializable "what goes wrong when" of a drill.

A schedule is an ordered list of :class:`FaultEvent` — each names a seam
from the :data:`~repro.drill.faultpoints.CATALOG`, the occurrence index
it strikes at (``None`` = every occurrence) and the command kind. A
drill is bit-reproducible from ``(seed, schedule)`` alone, so schedules
round-trip through JSON: the campaign serializes every failing
(shrunken) schedule to a reproducer file that ``repro drill --replay``
re-runs verbatim.

:func:`random_schedule` draws campaign schedules from the *fault* half
of the catalog only — environment misfortune a correct system must
tolerate. Deliberate bugs (``skip_fsync``) never appear in random
schedules; they are injected explicitly via :data:`SEEDED_BUGS` to prove
the invariant checkers have teeth.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.drill.faultpoints import (
    FAULT_CATALOG,
    FaultCommand,
    FaultPoints,
)

#: Roughly how many times each seam fires in a default drill — the
#: occurrence range random schedules draw from, per point. Too-large
#: occurrences simply never fire, which wastes campaign coverage.
_OCCURRENCE_RANGE = {
    "journal.append": 36,
    "store.put": 10,
    "redeploy.journal": 16,
    "redeploy.persist": 3,
    "fleet.route.accepted": 6,
    "fleet.record_terminal": 8,
    "worker.task.started": 12,
    "worker.task.compute": 12,
    "worker.task.respond": 12,
    "worker.heartbeat": 96,
    "supervisor.admit": 12,
    "supervisor.tick": 40,
}

#: Points random schedules never draw: ``journal.fsync`` carries only
#: the deliberate skip-fsync bug, and ``fleet.worker.send`` sits on the
#: real fleet's pipe (the sim covers that failure mode through the
#: ``worker.task.*`` seams instead).
_UNDRAWN_POINTS = ("journal.fsync", "fleet.worker.send")

#: Named deliberate bugs for campaign self-tests: each is the list of
#: events that recreate the defect. ``no-journal-fsync`` disables the
#: write-ahead journal's fsync wholesale and then cuts the power — the
#: canonical lost-acknowledged-write defect.
SEEDED_BUGS = {
    "no-journal-fsync": (
        ("journal.fsync", None, "skip_fsync", None),
        ("supervisor.tick", 24, "power_crash", None),
    ),
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled misfortune: strike ``point`` at its ``occurrence``-th
    hit (``None`` = every hit) with ``command`` (``arg`` = byte offset
    for ``torn``)."""

    point: str
    command: str
    occurrence: int | None = None
    arg: int | None = None

    def to_dict(self) -> dict:
        document: dict = {"point": self.point, "command": self.command}
        if self.occurrence is not None:
            document["occurrence"] = self.occurrence
        if self.arg is not None:
            document["arg"] = self.arg
        return document

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultEvent":
        return cls(
            point=str(payload["point"]),
            command=str(payload["command"]),
            occurrence=(
                int(payload["occurrence"])
                if payload.get("occurrence") is not None
                else None
            ),
            arg=int(payload["arg"]) if payload.get("arg") is not None else None,
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, JSON-serializable ordered set of fault events."""

    events: tuple[FaultEvent, ...] = ()

    def build(self) -> FaultPoints:
        """The armed-registry form of this schedule."""
        registry = FaultPoints()
        for event in self.events:
            registry.add(
                event.point,
                FaultCommand(event.command, event.arg),
                occurrence=event.occurrence,
            )
        return registry

    def with_bug(self, bug: str) -> "FaultSchedule":
        """This schedule plus the events of a named seeded bug."""
        extra = tuple(
            FaultEvent(point, command, occurrence, arg)
            for point, occurrence, command, arg in SEEDED_BUGS[bug]
        )
        return FaultSchedule(extra + self.events)

    # ------------------------------------------------------------------

    def to_list(self) -> list[dict]:
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_list(cls, payload: list) -> "FaultSchedule":
        return cls(tuple(FaultEvent.from_dict(item) for item in payload))

    def to_json(self) -> str:
        return json.dumps(self.to_list(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_list(json.loads(text))

    def __len__(self) -> int:
        return len(self.events)


def random_schedule(
    rng: random.Random, max_events: int = 5, points: tuple[str, ...] | None = None
) -> FaultSchedule:
    """Draw a seeded fault schedule from the fault catalog.

    Every command is addressed at an explicit occurrence (never ``None``)
    so a schedule is a *finite* amount of misfortune — a wildcard crash
    would restart the stack forever and no campaign round could quiesce.
    """
    if points is None:
        points = tuple(
            point
            for point in sorted(FAULT_CATALOG)
            if point not in _UNDRAWN_POINTS
        )
    count = rng.randint(1, max_events)
    events = []
    for _ in range(count):
        point = rng.choice(points)
        command = rng.choice(FAULT_CATALOG[point])
        occurrence = rng.randrange(_OCCURRENCE_RANGE.get(point, 20))
        arg = rng.randrange(96) if command == "torn" else None
        events.append(FaultEvent(point, command, occurrence, arg))
    return FaultSchedule(tuple(events))
