"""Delta-debugging shrink of a failing fault schedule.

A randomized campaign fails with a schedule of up to a handful of fault
events, but usually only a subset is load-bearing. :func:`shrink_schedule`
runs classic ddmin over the event list — repeatedly re-running the drill
on complements of ever-finer partitions and keeping any complement that
still violates the *same* invariant — followed by a one-at-a-time
removal pass, so the reproducer handed to a human is 1-minimal: deleting
any single remaining event makes the failure vanish.

Every probe is a full deterministic drill on a fresh scratch directory,
so the predicate is exact, not heuristic; a run budget bounds the worst
case (the budget exhausting early just leaves a larger — still failing —
reproducer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.drill.schedule import FaultSchedule


@dataclass
class ShrinkReport:
    """What shrinking achieved and what it cost."""

    schedule: FaultSchedule
    original_events: int
    runs: int
    invariant: str

    @property
    def shrunk_events(self) -> int:
        return len(self.schedule)


def shrink_schedule(
    seed: int,
    schedule: FaultSchedule,
    violations,
    shards: int = 3,
    requests: int = 10,
    max_ticks: int = 1200,
    budget: int = 160,
) -> ShrinkReport:
    """Minimize ``schedule`` while the drill still violates the same
    invariant the original run violated first."""
    from repro.drill.engine import run_drill

    target = violations[0].invariant
    runs = 0

    def failing(events) -> bool:
        nonlocal runs
        if runs >= budget:
            return False
        runs += 1
        result = run_drill(
            seed,
            FaultSchedule(tuple(events)),
            shards=shards,
            requests=requests,
            max_ticks=max_ticks,
        )
        return any(v.invariant == target for v in result.violations)

    events = list(schedule.events)
    events = _ddmin(events, failing)
    events = _one_minimal(events, failing)
    return ShrinkReport(
        schedule=FaultSchedule(tuple(events)),
        original_events=len(schedule),
        runs=runs,
        invariant=target,
    )


def _ddmin(events: list, failing) -> list:
    granularity = 2
    while len(events) >= 2:
        chunk = max(1, len(events) // granularity)
        chunks = [events[i : i + chunk] for i in range(0, len(events), chunk)]
        reduced = False
        for index in range(len(chunks)):
            complement = [
                event
                for j, part in enumerate(chunks)
                if j != index
                for event in part
            ]
            if complement and failing(complement):
                events = complement
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    return events


def _one_minimal(events: list, failing) -> list:
    index = 0
    while len(events) > 1 and index < len(events):
        candidate = events[:index] + events[index + 1 :]
        if failing(candidate):
            events = candidate
        else:
            index += 1
    return events
