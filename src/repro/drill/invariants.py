"""Whole-stack invariant checkers run after every drill.

Each checker inspects the finished :class:`~repro.drill.sim.DrillSim` —
its client-side trace plus the durable directories — and returns
:class:`Violation` records. The checkers read the journal segments and
decision log *raw* (via :func:`~repro.service.journal.scan_segment` and
:class:`~repro.service.redeploy.DecisionJournal`), independently of the
recovery code under test, so a recovery bug cannot hide its own
evidence.

The invariants:

``no-unhandled-error``
    The drill never escaped with a non-simulated exception (a corrupt
    sealed segment, an assertion, a recovery crash-loop).
``no-lost-request``
    Every acknowledged submission was answered or is journaled terminal
    — an ack durably written can never evaporate.
``duplicate-suppression``
    Resubmitting an idempotency key never observes two different
    answers.
``bit-identical-replay``
    Every re-execution of a request (after takeover or restart) produced
    a bit-identical result payload, and the stored result matches.
``journal-lifecycle``
    Within a segment family no record for a request follows its terminal
    record, and a request is never both completed and cancelled.
``store-journal-agreement``
    Every key the journal folds as completed-ok has a readable stored
    result matching the executed payload.
``redeploy-exactly-once``
    Every committed decision (candidate record with ``apply=true``) has
    exactly one ``applied`` record, uncommitted decisions have none, no
    plan was actuated twice, and ``incumbent.json`` holds the newest
    committed plan.
``fleet-drained``
    The drill quiesced: no queued or in-flight work remains and every
    worker ended alive, respawning, or explicitly quarantined.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro import serialization
from repro.service.journal import RequestJournal, _segment_key, scan_segment
from repro.service.redeploy import INCUMBENT_NAME, JOURNAL_NAME, DecisionJournal
from repro.util.errors import ConfigurationError

#: Journal record kinds that end a request's lifecycle.
_TERMINAL_EVENTS = ("completed", "cancelled")


@dataclass(frozen=True)
class Violation:
    invariant: str
    detail: str

    def to_dict(self) -> dict:
        return {"invariant": self.invariant, "detail": self.detail}

    @staticmethod
    def from_dict(data: dict) -> "Violation":
        return Violation(str(data["invariant"]), str(data["detail"]))


def _family_records(journal_dir: str) -> tuple[dict, list[Violation]]:
    """Raw record sequences per segment family, in segment order.

    A defective non-final segment is a violation in its own right (the
    torn-tail tolerance only ever applies to the live tail); the
    checkers still see every record before the defect.
    """
    families: dict = {}
    for name in os.listdir(journal_dir):
        key = _segment_key(name)
        if key is not None:
            families.setdefault(key[0], []).append((key[1], name))
    records: dict = {}
    violations: list[Violation] = []
    for shard, segments in sorted(
        families.items(), key=lambda item: (item[0] is None, item[0] or 0)
    ):
        segments.sort()
        family: list[dict] = []
        for index, (_, name) in enumerate(segments):
            segment_records, _, defect = scan_segment(
                os.path.join(journal_dir, name)
            )
            family.extend(segment_records)
            if defect is not None and index < len(segments) - 1:
                violations.append(
                    Violation(
                        "journal-lifecycle",
                        f"sealed segment {name} is defective: {defect}",
                    )
                )
        records[shard] = family
    return records, violations


def _canonical(value) -> str:
    """Order-insensitive fingerprint (stored results round-trip through
    JSON with sorted keys; in-memory ones keep insertion order)."""
    return json.dumps(value, sort_keys=True)


def _ok_payload(response: dict) -> str:
    """The comparable part of a delivered response: status + result.

    Timing, provenance (``recovered``/``replayed``) and request ids may
    legitimately differ between an original answer and its replay."""
    return _canonical([response.get("status"), response.get("result")])


def check_drill(sim) -> list[Violation]:
    violations: list[Violation] = []

    if sim.fatal_error is not None:
        violations.append(Violation("no-unhandled-error", sim.fatal_error))
    if not sim.quiesced:
        violations.append(
            Violation(
                "fleet-drained",
                f"work remained after {sim.tick} ticks (max {sim.max_ticks})",
            )
        )

    try:
        final = RequestJournal.scan(sim.journal_dir)
    except ConfigurationError as exc:
        violations.append(
            Violation("journal-lifecycle", f"final scan failed: {exc}")
        )
        return violations

    raw, raw_violations = _family_records(sim.journal_dir)
    violations.extend(raw_violations)

    # ------------------------------------------------------------- I1
    for sub in sim.trace.submissions:
        if not sub.acked:
            continue
        if sub.responses:
            continue
        if sub.request_id is not None and sub.request_id in final.terminal_ids:
            continue
        violations.append(
            Violation(
                "no-lost-request",
                f"submission {sub.seq} (key={sub.key!r}, "
                f"id={sub.request_id}) was acknowledged but never answered "
                "and has no terminal journal record",
            )
        )

    # ------------------------------------------------------------- I2
    by_key: dict = {}
    for sub in sim.trace.submissions:
        if sub.key is None:
            continue
        for response in sub.responses:
            if response.get("status") in ("ok", "degraded"):
                by_key.setdefault(sub.key, []).append(response)
    for key, responses in sorted(by_key.items()):
        payloads = {_ok_payload(r) for r in responses}
        if len(payloads) > 1:
            violations.append(
                Violation(
                    "duplicate-suppression",
                    f"key {key!r} observed {len(payloads)} distinct answers",
                )
            )

    # ------------------------------------------------------------- I3
    for handle, results in sorted(sim.trace.executions.items()):
        distinct = {_canonical(r) for r in results}
        if len(distinct) > 1:
            violations.append(
                Violation(
                    "bit-identical-replay",
                    f"{len(results)} executions of {handle!r} produced "
                    f"{len(distinct)} distinct payloads",
                )
            )

    # ------------------------------------------------------------- I4
    for shard, family in sorted(
        raw.items(), key=lambda item: (item[0] is None, item[0] or 0)
    ):
        terminal_seen: set = set()
        for record in family:
            request_id = record.get("id")
            event = record.get("event")
            if not isinstance(request_id, str):
                continue
            if request_id in terminal_seen:
                violations.append(
                    Violation(
                        "journal-lifecycle",
                        f"family {shard}: {event!r} for {request_id} after "
                        "its terminal record — a finished request was "
                        "resurrected",
                    )
                )
            if event in _TERMINAL_EVENTS:
                terminal_seen.add(request_id)
    completed_ids: set = set()
    cancelled_ids: set = set()
    for family in raw.values():
        for record in family:
            if record.get("event") == "completed":
                completed_ids.add(record.get("id"))
            elif record.get("event") == "cancelled":
                cancelled_ids.add(record.get("id"))
    for request_id in sorted(completed_ids & cancelled_ids):
        violations.append(
            Violation(
                "journal-lifecycle",
                f"{request_id} is journaled both completed and cancelled",
            )
        )

    # ------------------------------------------------------- I2/I3/I5
    if sim.service is not None:
        store = sim.service.store
        for key, (fingerprint, status) in sorted(final.keys.items()):
            if status not in ("ok", "degraded"):
                continue
            stored = store.get(key)
            if stored is None:
                violations.append(
                    Violation(
                        "store-journal-agreement",
                        f"journal folds {key!r} as completed-{status} but "
                        "the result store cannot answer it",
                    )
                )
                continue
            executions = sim.trace.executions.get(key)
            if executions and _canonical(stored.get("result")) != _canonical(
                executions[0]
            ):
                violations.append(
                    Violation(
                        "store-journal-agreement",
                        f"stored result for {key!r} differs from the "
                        "executed payload",
                    )
                )

    # ------------------------------------------------------------- I6
    violations.extend(_check_redeploy(sim))

    # ------------------------------------------------------------- I7
    if sim.service is not None:
        service = sim.service
        if service.tickets:
            violations.append(
                Violation(
                    "fleet-drained",
                    f"{len(service.tickets)} tickets still open at the end",
                )
            )
        for shard in sorted(service.queues):
            if service.queues[shard]:
                violations.append(
                    Violation(
                        "fleet-drained",
                        f"shard {shard} queue still holds "
                        f"{len(service.queues[shard])} tasks",
                    )
                )
        for worker in service.workers.values():
            if worker.state in ("hung", "exited"):
                violations.append(
                    Violation(
                        "fleet-drained",
                        f"{worker.name} ended {worker.state} — supervision "
                        "never reaped it",
                    )
                )
    elif sim.quiesced:
        violations.append(
            Violation("fleet-drained", "no service survived the drill")
        )

    return violations


def _check_redeploy(sim) -> list[Violation]:
    violations: list[Violation] = []
    journal_path = os.path.join(sim.redeploy_dir, JOURNAL_NAME)
    incumbent_path = os.path.join(sim.redeploy_dir, INCUMBENT_NAME)
    if not os.path.exists(journal_path):
        return violations
    try:
        records, _ = DecisionJournal(journal_path).scan()
    except ConfigurationError as exc:
        violations.append(
            Violation(
                "redeploy-exactly-once", f"decision journal unreadable: {exc}"
            )
        )
        return violations

    committed: dict = {}
    applied_counts: dict = {}
    for record in records:
        decision = record.get("decision")
        kind = record.get("record")
        if kind == "candidate" and record.get("apply"):
            committed[decision] = record
        elif kind == "applied":
            applied_counts[decision] = applied_counts.get(decision, 0) + 1

    for decision, count in sorted(applied_counts.items()):
        if decision not in committed:
            violations.append(
                Violation(
                    "redeploy-exactly-once",
                    f"decision {decision} has {count} applied record(s) but "
                    "no committed candidate",
                )
            )
        elif count != 1:
            violations.append(
                Violation(
                    "redeploy-exactly-once",
                    f"decision {decision} applied {count} times",
                )
            )
    for decision in sorted(set(committed) - set(applied_counts)):
        violations.append(
            Violation(
                "redeploy-exactly-once",
                f"decision {decision} committed but never applied — "
                "recovery lost the commit point",
            )
        )

    # The actuation callback fires at most once per committed decision
    # (recovery may legitimately skip it when the persisted incumbent
    # already matches), so per plan the actuation count can never exceed
    # the number of decisions that committed that plan.
    committed_counts: dict = {}
    for record in committed.values():
        try:
            canonical = serialization.plan_from_dict(
                record["plan"]
            ).canonical_key()
        except (ConfigurationError, KeyError) as exc:
            violations.append(
                Violation(
                    "redeploy-exactly-once",
                    f"committed candidate plan unreadable: {exc}",
                )
            )
            continue
        committed_counts[canonical] = committed_counts.get(canonical, 0) + 1
    actuated: dict = {}
    for canonical in sim.trace.apply_calls:
        actuated[canonical] = actuated.get(canonical, 0) + 1
    for canonical, count in sorted(actuated.items()):
        allowed = committed_counts.get(canonical, 0)
        if allowed == 0:
            violations.append(
                Violation(
                    "redeploy-exactly-once",
                    f"plan {canonical[:40]}... actuated without a committed "
                    "decision",
                )
            )
        elif count > allowed:
            violations.append(
                Violation(
                    "redeploy-exactly-once",
                    f"plan {canonical[:40]}... actuated {count} times for "
                    f"{allowed} committed decision(s)",
                )
            )

    if committed:
        newest = committed[max(committed)]
        try:
            expected = serialization.plan_from_dict(
                newest["plan"]
            ).canonical_key()
            actual = serialization.plan_from_dict(
                serialization.load(incumbent_path)
            ).canonical_key()
        except (ConfigurationError, FileNotFoundError, KeyError) as exc:
            violations.append(
                Violation(
                    "redeploy-exactly-once",
                    f"incumbent artifact unreadable after commit: {exc}",
                )
            )
        else:
            if expected != actual:
                violations.append(
                    Violation(
                        "redeploy-exactly-once",
                        "incumbent.json does not hold the newest committed "
                        "plan",
                    )
                )
    return violations
