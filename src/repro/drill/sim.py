"""Single-process deterministic simulation of the full service stack.

The drill runs the *real* durability machinery — :class:`~repro.service.
journal.RequestJournal` segment families, the :class:`~repro.service.
store.ResultStore`, the consistent :class:`~repro.service.fleet.HashRing`,
:class:`~repro.service.heartbeat.HeartbeatTracker`/:class:`RestartPolicy`
failure detection, per-request seeds from :func:`~repro.service.executor.
request_seed`, and the real :class:`~repro.service.redeploy.
RedeploymentController` commit point — but replaces the nondeterministic
substrate (threads, processes, pipes, wall clocks) with a discrete-event
tick loop and a virtual clock. Workers are protocol state machines that
advance one step per tick (``started → compute → respond``), so a fault
schedule addressing "the 3rd heartbeat" or "the 7th journal append"
strikes the same instant on every run: the whole drill is a pure
function of ``(seed, schedule)``.

A :class:`~repro.drill.faultpoints.SimulatedCrash` raised from any seam
kills the simulated process: in-memory queues, tickets and the
controller vanish; the next tick rebuilds the service *from its durable
files alone* — the same recovery path a real restart takes. A
``power_loss`` crash additionally truncates every file with un-fsync'd
bytes back to its last durable offset before the rebuild.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import random
from collections import deque
from dataclasses import dataclass, field

from repro.core.plan import DeploymentPlan
from repro.drill.faultpoints import (
    FaultPoints,
    SimulatedCrash,
    fault_hit,
    raise_if_crash,
)
from repro.service.executor import request_seed
from repro.service.fleet import HashRing
from repro.service.heartbeat import HeartbeatTracker, RestartPolicy
from repro.service.journal import RequestJournal
from repro.service.redeploy import DegradationEvent, RedeploymentController
from repro.service.store import ResultStore

#: Virtual seconds per tick, and the failure-detection knobs expressed
#: in virtual time. One protocol step per tick keeps interleavings wide.
TICK_SECONDS = 0.05
HEARTBEAT_INTERVAL = 0.1
HEARTBEAT_MISSES = 4
RESPAWN_BACKOFF = 0.2
RESPAWN_CAP = 1.0
QUARANTINE_RESTARTS = 4
QUARANTINE_WINDOW = 1_000.0

#: Small segments so drills exercise rotation and sealed-segment GC
#: invariants, not just a single live file.
SEGMENT_BYTES = 4096

#: After this many injected crashes the registry is disabled so a
#: pathological schedule cannot livelock the run restarting forever.
MAX_CRASHES = 20

#: The controller polls every this-many ticks.
REDEPLOY_EVERY = 7


def _plan(index: int) -> DeploymentPlan:
    return DeploymentPlan.from_mapping(
        {"app": [f"host-{index}", f"host-{index + 1}"]}
    )


INITIAL_PLAN = _plan(0)


# ----------------------------------------------------------------------
# Deterministic stand-ins for the search stack. The controller only ever
# calls refresh/assess/search; scores come from the drill's script so a
# redeploy decision is a pure function of the event sequence.
# ----------------------------------------------------------------------


class _StubEstimate:
    def __init__(self, score: float):
        self.score = score


class _StubAssessment:
    def __init__(self, score: float):
        self.estimate = _StubEstimate(score)


class _StubResult:
    def __init__(self, plan: DeploymentPlan, score: float):
        self.best_plan = plan
        self.best_assessment = _StubAssessment(score)


class _StubSearch:
    """Duck-typed ``DeploymentSearch`` driven by scripted scores."""

    def __init__(self):
        self.assessor = self
        self.topology = None
        self.score = 0.95
        self.candidate_plan = INITIAL_PLAN
        self.candidate_score = 0.95

    def refresh_probabilities(self) -> None:
        pass

    def clear_caches(self) -> None:
        pass

    def assess(self, plan, structure) -> _StubAssessment:
        return _StubAssessment(self.score)

    def search(self, spec, initial_plan=None) -> _StubResult:
        return _StubResult(self.candidate_plan, self.candidate_score)


# ----------------------------------------------------------------------
# Workload and client-side trace
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkOp:
    """One scripted client action at a virtual tick."""

    tick: int
    action: str  # "submit" | "resubmit" | "cancel" | "degrade"
    index: int  # submission index (submit) or referenced index
    key: str | None = None


def make_workload(rng: random.Random, requests: int) -> list[WorkOp]:
    """A seeded mix of keyed/unkeyed submits, resubmits, cancels and
    degradation signals, spread over virtual time."""
    ops: list[WorkOp] = []
    tick = 1
    for index in range(requests):
        tick += rng.randint(1, 3)
        key = f"key-{index}" if rng.random() < 0.65 else None
        ops.append(WorkOp(tick, "submit", index, key))
        if key is not None and rng.random() < 0.35:
            ops.append(WorkOp(tick + rng.randint(2, 14), "resubmit", index, key))
        if key is None and rng.random() < 0.25:
            ops.append(WorkOp(tick + 1, "cancel", index))
        if rng.random() < 0.3:
            ops.append(WorkOp(tick + rng.randint(0, 4), "degrade", index))
    ops.sort(key=lambda op: (op.tick, op.action, op.index))
    return ops


@dataclass
class Submission:
    """One client-side attempt travelling through the drill."""

    seq: int
    index: int
    kind: str
    key: str | None
    request: dict
    acked: bool = False
    request_id: str | None = None
    gave_up: bool = False
    attempts: int = 0
    retry_at: int | None = None
    responses: list[dict] = field(default_factory=list)


@dataclass
class DrillTrace:
    """Client-side ground truth; survives every simulated crash."""

    submissions: list[Submission] = field(default_factory=list)
    waiters: dict[str, list[Submission]] = field(default_factory=dict)
    executions: dict[str, list[dict]] = field(default_factory=dict)
    apply_calls: list[str] = field(default_factory=list)
    crashes: int = 0
    power_losses: int = 0
    restarts: int = 0
    failovers: int = 0


# ----------------------------------------------------------------------
# Server-side state (rebuilt from durable files on every crash)
# ----------------------------------------------------------------------


@dataclass
class SimTask:
    request_id: str
    kind: str
    request: dict
    key: str | None
    fingerprint: str | None
    shard: int
    recovered: bool = False
    phase: str = "start"  # start -> compute -> respond
    result: dict | None = None


@dataclass
class SimWorker:
    shard: int
    state: str = "alive"  # alive | hung | exited | down | quarantined
    task: SimTask | None = None
    generation: int = 1
    respawn_at: float | None = None

    @property
    def name(self) -> str:
        return f"shard-{self.shard}"


class _SimClock:
    def __init__(self):
        self._now = 0.0

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        self._now += seconds


class _ServiceState:
    """Everything a simulated process holds in memory. Constructed from
    the durable directories alone — that *is* the recovery path."""

    def __init__(self, sim: "DrillSim"):
        self.journals = {
            shard: RequestJournal(
                sim.journal_dir, segment_bytes=SEGMENT_BYTES, shard=shard
            )
            for shard in range(sim.shards)
        }
        self.store = ResultStore(os.path.join(sim.journal_dir, "results"))
        self.ring = HashRing(sim.shards)
        self.heartbeats = HeartbeatTracker(clock=sim.clock.now)
        self.restarts = RestartPolicy(
            backoff_seconds=RESPAWN_BACKOFF,
            backoff_cap_seconds=RESPAWN_CAP,
            quarantine_restarts=QUARANTINE_RESTARTS,
            quarantine_window_seconds=QUARANTINE_WINDOW,
            clock=sim.clock.now,
        )
        self.workers = {shard: SimWorker(shard) for shard in range(sim.shards)}
        self.queues: dict[int, deque[SimTask]] = {
            shard: deque() for shard in range(sim.shards)
        }
        self.tickets: dict[str, SimTask] = {}
        self.keys: dict[str, tuple] = {}
        self.answered: dict[str, dict] = {}
        self.terminal_ids: set[str] = set()

        # Global fold across every segment family: the per-shard
        # constructors above already truncated any torn live tails.
        state = RequestJournal.scan(sim.journal_dir)
        self.next_number = state.max_request_number + 1
        self.terminal_ids.update(state.terminal_ids)
        for key, (fingerprint, status) in state.keys.items():
            self.keys[key] = ("completed", fingerprint, status)
        for entry in state.pending:
            shard = entry.shard if entry.shard in self.workers else None
            if shard is None:
                shard = self.ring.owner(
                    entry.idempotency_key or entry.request_id
                )
            task = SimTask(
                request_id=entry.request_id,
                kind=entry.kind,
                request=entry.request,
                key=entry.idempotency_key,
                fingerprint=entry.fingerprint,
                shard=shard,
                recovered=True,
            )
            self.tickets[task.request_id] = task
            self.queues[shard].append(task)
            if task.key is not None:
                self.keys[task.key] = (
                    "inflight",
                    task.fingerprint,
                    task.request_id,
                )

        for worker in self.workers.values():
            self.heartbeats.beat(worker.name, busy=False)

        # The real controller, recovering its commit point from disk.
        # The fresh stub answers "search finds nothing better than the
        # current substrate" until the next scripted degradation, so an
        # uninstructed poll after a restart settles (one rejected
        # decision at most) instead of re-deciding forever.
        self.stub = _StubSearch()
        self.stub.score = sim.current_score
        self.stub.candidate_score = sim.current_score
        self.stub.candidate_plan = _plan(sim.plan_counter)
        self.controller = RedeploymentController(
            search=self.stub,
            structure=None,
            state_dir=sim.redeploy_dir,
            incumbent=INITIAL_PLAN,
            min_gain=0.002,
            degradation_threshold=0.005,
            search_seconds=0.1,
            max_retries=2,
            backoff_seconds=0.0,
            apply_plan=lambda plan: sim.trace.apply_calls.append(
                plan.canonical_key()
            ),
            sleep=lambda seconds: None,
        )

    def routable(self) -> list[int]:
        return [
            shard
            for shard in sorted(self.workers)
            if self.workers[shard].state != "quarantined"
        ]

    def close_handles(self) -> None:
        """Drop file handles without the graceful-close fsync — this
        process model just crashed; nothing graceful happens."""
        for journal in self.journals.values():
            with contextlib.suppress(Exception):
                journal._handle.close()


# ----------------------------------------------------------------------
# The drill itself
# ----------------------------------------------------------------------


class DrillSim:
    """One deterministic drill: seeded workload + armed fault schedule."""

    def __init__(
        self,
        seed: int,
        root: str,
        registry: FaultPoints,
        shards: int = 3,
        requests: int = 10,
        max_ticks: int = 1200,
    ):
        self.seed = seed
        self.shards = shards
        self.requests = requests
        self.max_ticks = max_ticks
        self.registry = registry
        self.journal_dir = os.path.join(root, "journal")
        self.redeploy_dir = os.path.join(root, "redeploy")
        os.makedirs(self.journal_dir, exist_ok=True)
        os.makedirs(self.redeploy_dir, exist_ok=True)

        self.clock = _SimClock()
        self.trace = DrillTrace()
        self.ops = make_workload(random.Random(seed), requests)
        self.redeploy_rng = random.Random(seed ^ 0x5EED)
        self.current_score = 0.95
        self.plan_counter = 0
        self.op_cursor = 0
        self.tick = 0
        self.next_seq = 0
        self.service: _ServiceState | None = None
        self.quiesced = False
        self.fatal_error: str | None = None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> "DrillSim":
        while self.tick < self.max_ticks and self._work_remaining():
            self.tick += 1
            self.clock.advance(TICK_SECONDS)
            try:
                if self.service is None:
                    self.service = _ServiceState(self)
                    self.trace.restarts += 1
                raise_if_crash(
                    fault_hit("supervisor.tick", tick=self.tick),
                    "supervisor.tick",
                )
                self._client_ops()
                self._beat_workers()
                self._monitor()
                self._dispatch()
                self._worker_steps()
                if self.tick % REDEPLOY_EVERY == 0:
                    self.service.controller.step()
            except SimulatedCrash as crash:
                self._handle_crash(crash)
        self.quiesced = not self._work_remaining()
        if self.service is None:
            # Crashed on the very last permitted tick: one final rebuild
            # so the invariant checkers see a recovered system.
            with contextlib.suppress(SimulatedCrash):
                self.service = _ServiceState(self)
                self.trace.restarts += 1
        self._final_fetches()
        return self

    def _work_remaining(self) -> bool:
        if self.op_cursor < len(self.ops):
            return True
        for sub in self.trace.submissions:
            if sub.retry_at is not None and not sub.acked and not sub.gave_up:
                return True
        service = self.service
        if service is None:
            return True
        if service.tickets:
            return True
        return any(
            worker.state in ("hung", "exited")
            for worker in service.workers.values()
        )

    def _handle_crash(self, crash: SimulatedCrash) -> None:
        self.trace.crashes += 1
        service, self.service = self.service, None
        if service is not None:
            service.close_handles()
        if crash.power_loss:
            self.trace.power_losses += 1
            self.registry.apply_power_loss()
        if self.trace.crashes >= MAX_CRASHES:
            self.registry.disable()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def _client_ops(self) -> None:
        while (
            self.op_cursor < len(self.ops)
            and self.ops[self.op_cursor].tick <= self.tick
        ):
            op = self.ops[self.op_cursor]
            self.op_cursor += 1
            self._apply_op(op)
        for sub in self.trace.submissions:
            if (
                sub.retry_at is not None
                and sub.retry_at <= self.tick
                and not sub.acked
                and not sub.gave_up
            ):
                sub.retry_at = None
                self._guarded_submit(sub)

    def _apply_op(self, op: WorkOp) -> None:
        if op.action in ("submit", "resubmit"):
            request: dict = {"hosts": [f"h{op.index}"], "k": 1}
            if op.key is not None:
                request["idempotency_key"] = op.key
            sub = Submission(
                seq=self.next_seq,
                index=op.index,
                kind="assess",
                key=op.key,
                request=request,
            )
            self.next_seq += 1
            self.trace.submissions.append(sub)
            self._guarded_submit(sub)
        elif op.action == "cancel":
            self._cancel(op.index)
        elif op.action == "degrade":
            self._redeploy_degrade()

    def _guarded_submit(self, sub: Submission) -> None:
        """Submit; on a mid-admission crash apply the client retry rules
        (keyed requests re-send, unkeyed ones must not)."""
        try:
            self._submit(sub)
        except SimulatedCrash:
            if sub.key is not None and sub.attempts < 3:
                sub.retry_at = self.tick + 5
            else:
                sub.gave_up = True
            raise

    def _submit(self, sub: Submission) -> None:
        sub.attempts += 1
        service = self.service
        key = sub.key
        if key is not None:
            entry = service.keys.get(key)
            if entry is not None and entry[0] == "completed":
                stored = service.store.get(key)
                if stored is not None:
                    self._deliver_to(sub, dict(stored, replayed=True))
                    return
                # Stored result unreadable: degrade to re-execution.
            elif entry is not None and entry[0] == "inflight":
                request_id = entry[2]
                sub.acked = True
                sub.request_id = request_id
                self.trace.waiters.setdefault(request_id, []).append(sub)
                if request_id in service.answered:
                    self._deliver_to(sub, service.answered[request_id])
                return
        routable = service.routable()
        if not routable:
            self._deliver_to(
                sub,
                {
                    "request_id": None,
                    "status": "rejected",
                    "error": {"reason": "all shard workers are quarantined"},
                },
            )
            return
        raise_if_crash(
            fault_hit("supervisor.admit", seq=sub.seq), "supervisor.admit"
        )
        request_id = f"req-{service.next_number}"
        fingerprint = None
        if key is not None:
            fingerprint = hashlib.sha256(
                json.dumps(sub.request, sort_keys=True).encode("utf-8")
            ).hexdigest()[:16]
            shard = service.ring.owner(key, routable)
        else:
            shard = min(
                routable, key=lambda s: (len(service.queues[s]), s)
            )
        # Write-ahead: the accepted record is durable before the client
        # is acked or the task can dispatch. Seams may crash in here.
        service.journals[shard].accepted(
            request_id, sub.kind, sub.request, key, fingerprint
        )
        service.next_number += 1
        task = SimTask(
            request_id=request_id,
            kind=sub.kind,
            request=sub.request,
            key=key,
            fingerprint=fingerprint,
            shard=shard,
        )
        service.tickets[request_id] = task
        service.queues[shard].append(task)
        if key is not None:
            service.keys[key] = ("inflight", fingerprint, request_id)
        sub.acked = True
        sub.request_id = request_id
        self.trace.waiters.setdefault(request_id, []).append(sub)

    def _cancel(self, index: int) -> None:
        service = self.service
        target = None
        for sub in self.trace.submissions:
            if sub.index == index and sub.request_id is not None:
                target = sub
        if target is None:
            return
        task = service.tickets.get(target.request_id)
        if task is None:
            return
        if any(worker.task is task for worker in service.workers.values()):
            return  # already executing; the drill only cancels queued work
        queue = service.queues[task.shard]
        if task not in queue:
            return
        queue.remove(task)
        service.journals[task.shard].cancelled(
            task.request_id, reason="client-cancel", started=False
        )
        service.tickets.pop(task.request_id, None)
        service.terminal_ids.add(task.request_id)
        if task.key is not None:
            entry = service.keys.get(task.key)
            if entry is not None and entry[0] == "inflight":
                service.keys.pop(task.key, None)
        response = {"request_id": task.request_id, "status": "cancelled"}
        service.answered[task.request_id] = response
        self._deliver(task.request_id, response)

    def _deliver(self, request_id: str, response: dict) -> None:
        for sub in self.trace.waiters.get(request_id, []):
            self._deliver_to(sub, response)

    def _deliver_to(self, sub: Submission, response: dict) -> None:
        sub.responses.append(response)

    def _final_fetches(self) -> None:
        """The client's last retry pass: keyed submissions that never saw
        a response re-fetch their key — the stored-response replay path."""
        service = self.service
        if service is None:
            return
        for sub in self.trace.submissions:
            if not sub.acked or sub.responses or sub.key is None:
                continue
            entry = service.keys.get(sub.key)
            if entry is not None and entry[0] == "completed":
                stored = service.store.get(sub.key)
                if stored is not None:
                    self._deliver_to(sub, dict(stored, replayed=True))
                    continue
            if sub.request_id in service.answered:
                self._deliver_to(sub, service.answered[sub.request_id])

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _beat_workers(self) -> None:
        service = self.service
        for shard in sorted(service.workers):
            worker = service.workers[shard]
            if worker.state != "alive":
                continue
            command = fault_hit("worker.heartbeat", shard=shard)
            if command is not None and command.kind == "hang":
                worker.state = "hung"
                continue
            if command is not None and command.kind == "drop":
                continue
            service.heartbeats.beat(worker.name, busy=worker.task is not None)

    def _monitor(self) -> None:
        service = self.service
        now = self.clock.now()
        for shard in sorted(service.workers):
            worker = service.workers[shard]
            if (
                worker.state == "down"
                and worker.respawn_at is not None
                and worker.respawn_at <= now
            ):
                worker.state = "alive"
                worker.generation += 1
                worker.respawn_at = None
                service.heartbeats.beat(worker.name, busy=False)
            elif worker.state == "exited":
                self._fail_worker(worker, "process exited")
            elif worker.state in ("alive", "hung") and service.heartbeats.missed(
                worker.name, HEARTBEAT_INTERVAL, HEARTBEAT_MISSES
            ):
                self._fail_worker(
                    worker, f"missed {HEARTBEAT_MISSES} heartbeats"
                )

    def _fail_worker(self, worker: SimWorker, reason: str) -> None:
        """Declare a worker dead: take over its work, then let the
        restart policy decide respawn vs quarantine."""
        service = self.service
        shard = worker.shard
        self.trace.failovers += 1

        # The live task objects are the primary takeover source (a task
        # stolen from another shard's family lives only here); the dead
        # family's journal scan cross-checks for supervisor amnesia.
        orphans: list[tuple[SimTask, bool]] = []
        if worker.task is not None:
            task = worker.task
            worker.task = None
            task.phase = "start"
            task.result = None
            task.recovered = True
            orphans.append((task, True))
        for task in service.queues[shard]:
            orphans.append((task, False))
        service.queues[shard].clear()
        known = {task.request_id for task, _ in orphans}
        scan = RequestJournal.scan(self.journal_dir, shard=shard)
        for entry in scan.pending:
            if (
                entry.request_id in service.terminal_ids
                or entry.request_id in known
            ):
                continue
            live = service.tickets.get(entry.request_id)
            if live is not None and live.shard != shard:
                continue  # stolen or already moved; it lives elsewhere
            if live is not None:
                live.phase = "start"
                live.result = None
                live.recovered = True
                orphans.append((live, False))
                continue
            orphans.append(
                (
                    SimTask(
                        request_id=entry.request_id,
                        kind=entry.kind,
                        request=entry.request,
                        key=entry.idempotency_key,
                        fingerprint=entry.fingerprint,
                        shard=shard,
                        recovered=True,
                    ),
                    False,
                )
            )

        worker.state = "down"
        delay = service.restarts.record_failure(worker.name)
        if delay is None:
            worker.state = "quarantined"
        else:
            worker.respawn_at = self.clock.now() + delay
        service.heartbeats.beat(worker.name, busy=False)

        survivors = [s for s in service.routable() if s != shard]
        for task, front in orphans:
            request_id = task.request_id
            if not survivors:
                service.journals[shard].cancelled(
                    request_id, reason="failover", started=False
                )
                service.tickets.pop(request_id, None)
                service.terminal_ids.add(request_id)
                if task.key is not None:
                    service.keys.pop(task.key, None)
                response = {"request_id": request_id, "status": "rejected"}
                service.answered[request_id] = response
                self._deliver(request_id, response)
                continue
            if task.key is not None:
                new_shard = service.ring.owner(task.key, survivors)
            else:
                new_shard = min(
                    survivors, key=lambda s: (len(service.queues[s]), s)
                )
            # Re-accept into the survivor's segment family before it can
            # dispatch there — the write-ahead contract, again.
            service.journals[new_shard].accepted(
                request_id,
                task.kind,
                task.request,
                task.key,
                task.fingerprint,
            )
            raise_if_crash(
                fault_hit("fleet.route.accepted", request=request_id),
                "fleet.route.accepted",
            )
            task.shard = new_shard
            task.recovered = True
            service.tickets[request_id] = task
            if front:
                service.queues[new_shard].appendleft(task)
            else:
                service.queues[new_shard].append(task)
            if task.key is not None:
                service.keys[task.key] = (
                    "inflight",
                    task.fingerprint,
                    request_id,
                )

    def _dispatch(self) -> None:
        service = self.service
        for shard in sorted(service.workers):
            worker = service.workers[shard]
            if worker.state != "alive" or worker.task is not None:
                continue
            if service.queues[shard]:
                worker.task = service.queues[shard].popleft()
            else:
                # Steal an unkeyed task from the longest other queue.
                candidates = sorted(
                    (
                        (-len(service.queues[s]), s)
                        for s in sorted(service.workers)
                        if s != shard and service.queues[s]
                    ),
                )
                for _, other in candidates:
                    stolen = next(
                        (t for t in service.queues[other] if t.key is None),
                        None,
                    )
                    if stolen is not None:
                        service.queues[other].remove(stolen)
                        stolen.shard = shard
                        worker.task = stolen
                        break
            if worker.task is not None:
                worker.task.phase = "start"

    def _worker_steps(self) -> None:
        service = self.service
        for shard in sorted(service.workers):
            worker = service.workers[shard]
            if worker.state != "alive" or worker.task is None:
                continue
            task = worker.task
            if task.phase == "start":
                command = fault_hit(
                    "worker.task.started", shard=shard, request=task.request_id
                )
                if self._worker_fault(worker, command):
                    continue
                if command is None or command.kind != "drop":
                    service.journals[task.shard].started(task.request_id)
                task.phase = "compute"
            elif task.phase == "compute":
                command = fault_hit(
                    "worker.task.compute", shard=shard, request=task.request_id
                )
                if self._worker_fault(worker, command):
                    continue
                task.result = self._execute(task)
                self.trace.executions.setdefault(
                    task.key or task.request_id, []
                ).append(task.result)
                task.phase = "respond"
            elif task.phase == "respond":
                command = fault_hit(
                    "worker.task.respond", shard=shard, request=task.request_id
                )
                if self._worker_fault(worker, command):
                    continue
                response = {
                    "request_id": task.request_id,
                    "status": "ok",
                    "result": task.result,
                    "recovered": task.recovered,
                }
                self._record_terminal(task, response)
                worker.task = None

    def _worker_fault(self, worker: SimWorker, command) -> bool:
        if command is None:
            return False
        if command.kind == "kill":
            # The process dies; the supervisor-side ticket stays on the
            # slot until the monitor notices and takes the work over.
            worker.state = "exited"
            return True
        if command.kind == "hang":
            worker.state = "hung"
            return True
        return False

    def _execute(self, task: SimTask) -> dict:
        """The deterministic stand-in for an assessment: a pure function
        of the per-request seed, which derives from the idempotency key
        (or the journaled request id) — so any re-execution, in any
        process incarnation, is bit-identical."""
        seed = request_seed(self.seed, task.kind, task.key or task.request_id)
        digest = hashlib.sha256(f"drill:{seed}".encode("utf-8")).hexdigest()
        return {
            "score": int(digest[:8], 16) / 0xFFFFFFFF,
            "digest": digest[:16],
            "seed": seed,
        }

    def _record_terminal(self, task: SimTask, response: dict) -> None:
        """Store-then-journal, the same order the fleet uses: the result
        must be durable before the journal forgets the request."""
        service = self.service
        if task.key is not None:
            try:
                service.store.put(
                    task.key,
                    {
                        "request_id": task.request_id,
                        "status": response["status"],
                        "result": task.result,
                    },
                )
            except OSError:
                # Mirror the fleet: answer the client, leave the journal
                # without a terminal record — recovery will re-execute
                # (bit-identically) after a restart.
                service.tickets.pop(task.request_id, None)
                service.answered[task.request_id] = response
                self._deliver(task.request_id, response)
                return
        # The window the real fleet guards with the same seam: result
        # durable, journal still unaware — a crash here must re-execute
        # bit-identically, not lose or double the answer.
        raise_if_crash(
            fault_hit("fleet.record_terminal", request=task.request_id),
            "fleet.record_terminal",
        )
        service.journals[task.shard].completed(
            task.request_id, response["status"]
        )
        service.terminal_ids.add(task.request_id)
        service.tickets.pop(task.request_id, None)
        if task.key is not None:
            service.keys[task.key] = (
                "completed",
                task.fingerprint,
                response["status"],
            )
        service.answered[task.request_id] = response
        self._deliver(task.request_id, response)

    # ------------------------------------------------------------------
    # Redeployment controller script
    # ------------------------------------------------------------------

    def _redeploy_degrade(self) -> None:
        service = self.service
        drop = 0.01
        gain = self.redeploy_rng.choice([0.0005, 0.008, 0.02])
        self.current_score = round(self.current_score - drop, 6)
        self.plan_counter += 1
        stub = service.stub
        stub.score = self.current_score
        stub.candidate_plan = _plan(self.plan_counter)
        stub.candidate_score = round(self.current_score + gain, 6)
        service.controller.observe(
            DegradationEvent(kind="score-drop", detail="drill degradation")
        )
        decision = service.controller.step()
        if decision is not None and decision.action == "applied":
            self.current_score = stub.candidate_score
            stub.score = self.current_score
