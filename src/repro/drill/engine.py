"""Drill execution: single drills, randomized campaigns, replay.

:func:`run_drill` is the atom — one deterministic simulation of the full
stack under one fault schedule, on a scratch directory, followed by the
invariant sweep. :func:`run_campaign` draws seeded random schedules from
the environment-fault catalog, stops at the first invariant violation,
shrinks the failing schedule to a minimal reproducer and writes it as
JSON; :func:`replay_reproducer` re-runs such a file bit-identically.

The campaign verdict is also written as a small JSON document so the
serving stack can surface "when did a drill last pass against this code"
in ``/healthz`` (see :func:`write_verdict` / :func:`load_verdict`).
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from repro.drill.faultpoints import armed
from repro.drill.invariants import Violation, check_drill
from repro.drill.schedule import SEEDED_BUGS, FaultSchedule, random_schedule
from repro.drill.sim import DrillSim
from repro.util.errors import ConfigurationError

REPRODUCER_FORMAT = "drill-reproducer"
VERDICT_NAME = "drill-verdict.json"


@dataclass
class DrillResult:
    """Outcome of one drill: the schedule, what fired, what broke."""

    seed: int
    schedule: FaultSchedule
    violations: list[Violation]
    ticks: int = 0
    crashes: int = 0
    power_losses: int = 0
    restarts: int = 0
    failovers: int = 0
    faults_fired: int = 0
    submissions: int = 0

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "schedule": self.schedule.to_list(),
            "violations": [v.to_dict() for v in self.violations],
            "ticks": self.ticks,
            "crashes": self.crashes,
            "power_losses": self.power_losses,
            "restarts": self.restarts,
            "failovers": self.failovers,
            "faults_fired": self.faults_fired,
            "submissions": self.submissions,
        }


def run_drill(
    seed: int,
    schedule: FaultSchedule,
    shards: int = 3,
    requests: int = 10,
    base_dir: str | None = None,
    max_ticks: int = 1200,
) -> DrillResult:
    """One deterministic drill; bit-reproducible from its arguments.

    ``base_dir`` keeps the scratch directory for post-mortems; by default
    a temp directory is used and removed. Violation details are
    root-path-sanitized so two replays of the same reproducer compare
    equal even though their scratch paths differ.
    """
    registry = schedule.build()
    root = base_dir or tempfile.mkdtemp(prefix="repro-drill-")
    own_root = base_dir is None
    sim = DrillSim(
        seed,
        root,
        registry,
        shards=shards,
        requests=requests,
        max_ticks=max_ticks,
    )
    try:
        with armed(registry):
            try:
                sim.run()
            except Exception as exc:  # noqa: BLE001 - verdict, not control flow
                sim.fatal_error = f"{type(exc).__name__}: {exc}"
                sim.quiesced = False
        violations = [
            Violation(v.invariant, v.detail.replace(root, "<drill>"))
            for v in check_drill(sim)
        ]
    finally:
        if sim.service is not None:
            sim.service.close_handles()
        if own_root:
            shutil.rmtree(root, ignore_errors=True)
    return DrillResult(
        seed=seed,
        schedule=schedule,
        violations=violations,
        ticks=sim.tick,
        crashes=sim.trace.crashes,
        power_losses=sim.trace.power_losses,
        restarts=sim.trace.restarts,
        failovers=sim.trace.failovers,
        faults_fired=len(registry.fired),
        submissions=len(sim.trace.submissions),
    )


@dataclass
class CampaignReport:
    """Outcome of a randomized drill campaign."""

    rounds: int
    rounds_run: int
    seed: int
    bug: str | None
    failure: DrillResult | None = None
    failed_round: int | None = None
    reproducer_path: str | None = None
    original_events: int | None = None
    shrunk_events: int | None = None
    shrink_runs: int = 0
    total_faults: int = 0
    total_crashes: int = 0
    total_submissions: int = 0
    round_results: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.failure is None

    def to_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "rounds_run": self.rounds_run,
            "seed": self.seed,
            "bug": self.bug,
            "passed": self.passed,
            "failed_round": self.failed_round,
            "reproducer": self.reproducer_path,
            "original_events": self.original_events,
            "shrunk_events": self.shrunk_events,
            "shrink_runs": self.shrink_runs,
            "total_faults": self.total_faults,
            "total_crashes": self.total_crashes,
            "total_submissions": self.total_submissions,
            "violations": (
                [v.to_dict() for v in self.failure.violations]
                if self.failure is not None
                else []
            ),
        }


def run_campaign(
    rounds: int,
    seed: int,
    bug: str | None = None,
    shards: int = 3,
    requests: int = 10,
    max_events: int = 5,
    max_ticks: int = 1200,
    shrink_failures: bool = True,
    out_dir: str | None = None,
    progress=None,
) -> CampaignReport:
    """Run ``rounds`` seeded random fault schedules; stop at the first
    invariant violation and shrink it to a minimal reproducer.

    ``bug`` names a :data:`~repro.drill.schedule.SEEDED_BUGS` entry to
    graft onto every schedule — the self-test proving the invariants
    can catch a real durability bug, not just pass quiet runs.
    """
    if bug is not None and bug not in SEEDED_BUGS:
        raise ConfigurationError(
            f"unknown seeded bug {bug!r}; have {sorted(SEEDED_BUGS)}"
        )
    rng = random.Random(seed)
    report = CampaignReport(rounds=rounds, rounds_run=0, seed=seed, bug=bug)
    for round_index in range(rounds):
        drill_seed = rng.randrange(1 << 30)
        schedule = random_schedule(rng, max_events=max_events)
        if bug is not None:
            schedule = schedule.with_bug(bug)
        result = run_drill(
            drill_seed,
            schedule,
            shards=shards,
            requests=requests,
            max_ticks=max_ticks,
        )
        report.rounds_run += 1
        report.total_faults += result.faults_fired
        report.total_crashes += result.crashes
        report.total_submissions += result.submissions
        report.round_results.append(
            {
                "round": round_index,
                "seed": drill_seed,
                "events": len(schedule),
                "faults_fired": result.faults_fired,
                "crashes": result.crashes,
                "passed": result.passed,
            }
        )
        if progress is not None:
            progress(round_index, result)
        if result.passed:
            continue
        report.failure = result
        report.failed_round = round_index
        reproducer_schedule = schedule
        report.original_events = len(schedule)
        if shrink_failures:
            from repro.drill.shrink import shrink_schedule

            shrink = shrink_schedule(
                drill_seed,
                schedule,
                result.violations,
                shards=shards,
                requests=requests,
                max_ticks=max_ticks,
            )
            reproducer_schedule = shrink.schedule
            report.shrunk_events = shrink.shrunk_events
            report.shrink_runs = shrink.runs
        report.reproducer_path = write_reproducer(
            os.path.join(
                out_dir or ".", f"drill-repro-{seed}-r{round_index}.json"
            ),
            seed=drill_seed,
            schedule=reproducer_schedule,
            shards=shards,
            requests=requests,
            max_ticks=max_ticks,
            violations=result.violations,
            campaign={"seed": seed, "round": round_index, "bug": bug},
            original_events=report.original_events,
        )
        break
    return report


# ----------------------------------------------------------------------
# Reproducer files
# ----------------------------------------------------------------------


def write_reproducer(
    path: str,
    seed: int,
    schedule: FaultSchedule,
    shards: int,
    requests: int,
    max_ticks: int,
    violations,
    campaign: dict | None = None,
    original_events: int | None = None,
) -> str:
    document = {
        "format": REPRODUCER_FORMAT,
        "version": 1,
        "seed": seed,
        "shards": shards,
        "requests": requests,
        "max_ticks": max_ticks,
        "schedule": schedule.to_list(),
        "violations": [v.to_dict() for v in violations],
        "original_events": original_events,
        "campaign": campaign,
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def replay_reproducer(path: str) -> DrillResult:
    """Re-run a reproducer file: same seed, same schedule, same drill."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"cannot read reproducer {path}: {exc}")
    if document.get("format") != REPRODUCER_FORMAT:
        raise ConfigurationError(
            f"{path} is not a {REPRODUCER_FORMAT} file"
        )
    return run_drill(
        int(document["seed"]),
        FaultSchedule.from_list(document["schedule"]),
        shards=int(document.get("shards", 3)),
        requests=int(document.get("requests", 10)),
        max_ticks=int(document.get("max_ticks", 1200)),
    )


# ----------------------------------------------------------------------
# Verdict surfaced in /healthz
# ----------------------------------------------------------------------


def write_verdict(directory: str, report: CampaignReport) -> str:
    """Persist the campaign verdict where a serving stack can find it."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, VERDICT_NAME)
    document = dict(report.to_dict(), completed_at=time.time())
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_verdict(directory: str) -> dict | None:
    """The last drill verdict written next to this journal, if any."""
    path = os.path.join(directory, VERDICT_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None
