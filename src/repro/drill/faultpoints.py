"""Named fault-injection seams for the deterministic failure drill.

The whole drill subsystem rests on one idea: the durability modules
(``journal``, ``store``, ``fleet``, ``redeploy``) expose *named seams* —
points where a real deployment can crash, tear a write, lose an fsync or
drop a message — and a :class:`FaultPoints` registry decides, purely from
``(point name, occurrence index)``, what misfortune strikes there. With
no registry armed every seam is a cheap no-op (one module-global ``is
None`` check), so production code pays nothing; with a registry armed,
the same binary replays a fault schedule bit-for-bit.

Two kinds of injected misfortune exist and the distinction matters:

* **Faults** model the environment being hostile — process crashes,
  power loss, torn writes, worker kills/hangs, dropped messages, a
  failing ``os.replace``. A correct system must survive every schedule
  of these without violating its invariants; the randomized campaign
  draws only from faults.
* **Bugs** model the *code* misbehaving — today, skipping an fsync the
  write-ahead contract requires. The campaign injects these only when
  explicitly asked to (``--seed-bug``), as a self-test that the
  invariant checkers actually catch real defects.

Crashes are raised as :class:`SimulatedCrash`, deliberately derived from
``BaseException`` so they sail past the broad ``except Exception``
recovery handlers in the service — exactly like a SIGKILL would.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Command kinds a fault point can be told to execute.
KINDS = (
    "crash",        # raise SimulatedCrash *before* the guarded operation
    "crash_after",  # complete the operation, then raise SimulatedCrash
    "power_crash",  # crash + power loss: un-fsync'd bytes are truncated
    "torn",         # write only the first ``arg`` bytes, then crash
    "skip_fsync",   # (bug) complete the write but skip its fsync
    "io_error",     # raise OSError at the seam (e.g. os.replace failing)
    "exit",         # real fleet worker: os._exit(70) at the seam
    "drop",         # drop the message/heartbeat crossing the seam
    "kill",         # sim worker dies at this protocol step
    "hang",         # sim worker stops beating and stops progressing
)

#: Every seam the drill knows, with the command kinds it honours. Points
#: under ``worker.``/``supervisor.`` are simulation-protocol seams; the
#: rest are threaded into the production durability modules.
CATALOG = {
    "journal.append": ("crash", "crash_after", "torn", "power_crash"),
    "journal.fsync": ("skip_fsync",),
    "store.put": ("crash", "crash_after", "io_error", "power_crash"),
    "redeploy.journal": ("crash", "crash_after", "torn", "power_crash"),
    "redeploy.persist": ("crash", "crash_after", "power_crash"),
    "fleet.route.accepted": ("crash",),
    "fleet.record_terminal": ("crash",),
    "fleet.worker.send": ("exit", "drop"),
    "worker.task.started": ("kill", "hang", "drop"),
    "worker.task.compute": ("kill", "hang"),
    "worker.task.respond": ("kill", "hang"),
    "worker.heartbeat": ("drop", "hang"),
    "supervisor.admit": ("crash", "power_crash"),
    "supervisor.tick": ("crash", "power_crash"),
}

#: Seams whose commands are environment faults a correct system must
#: tolerate. The randomized campaign draws only from these; the
#: remaining catalog entries (``journal.fsync``) are deliberate bugs.
FAULT_CATALOG = {
    point: kinds
    for point, kinds in CATALOG.items()
    if point != "journal.fsync"
}


class SimulatedCrash(BaseException):
    """A process death injected at a fault point.

    Derives from ``BaseException`` so it is *not* swallowed by the
    service's ``except Exception`` recovery paths — a crash must kill
    the process model the way SIGKILL kills a real one. ``power_loss``
    marks crashes that also lose every byte written since the last
    fsync (the registry tracks those bytes; see
    :meth:`FaultPoints.apply_power_loss`).
    """

    def __init__(self, point: str, power_loss: bool = False):
        super().__init__(f"drill: simulated crash at fault point {point!r}")
        self.point = point
        self.power_loss = power_loss


@dataclass(frozen=True)
class FaultCommand:
    """What to do at one seam hit: a kind plus an optional argument
    (``torn`` uses ``arg`` as the byte offset to tear the write at)."""

    kind: str
    arg: int | None = None


class FaultPoints:
    """Occurrence-addressed registry of fault commands.

    Commands are keyed ``(point, occurrence)`` — "the 3rd time the
    journal appends, tear the write at byte 17" — or ``(point, None)``
    for every occurrence. Hit counting is the only state the schedule
    addresses, so a drill is bit-reproducible from ``(seed, schedule)``.

    The registry also does the durability bookkeeping faults need:
    ``*.fsync`` hits with a ``skip_fsync`` command record the file's
    last-durable byte offset, and :meth:`apply_power_loss` truncates
    those files back to it — the worst-case outcome of losing power
    with dirty pages in the OS cache.
    """

    def __init__(self):
        self._exact: dict[tuple[str, int], FaultCommand] = {}
        self._always: dict[str, FaultCommand] = {}
        self.counters: dict[str, int] = {}
        self.fired: list[dict] = []
        self.unsynced: dict[str, int] = {}
        self.enabled = True

    def add(
        self, point: str, command: FaultCommand, occurrence: int | None = None
    ) -> "FaultPoints":
        if point not in CATALOG:
            raise ValueError(f"unknown fault point {point!r}")
        if command.kind not in CATALOG[point]:
            raise ValueError(
                f"fault point {point!r} does not honour {command.kind!r}; "
                f"allowed: {CATALOG[point]}"
            )
        if occurrence is None:
            self._always[point] = command
        else:
            self._exact[(point, int(occurrence))] = command
        return self

    # ------------------------------------------------------------------

    def hit(self, point: str, **context) -> FaultCommand | None:
        """Count one pass through ``point`` and return its command, if any."""
        index = self.counters.get(point, 0)
        self.counters[point] = index + 1
        command = None
        if self.enabled:
            command = self._exact.get((point, index)) or self._always.get(point)
        path = context.get("path")
        if point.endswith(".fsync") and path is not None:
            if command is not None and command.kind == "skip_fsync":
                # Remember the last byte known durable; later skipped
                # fsyncs must not raise the low-water mark.
                self.unsynced.setdefault(path, int(context.get("durable", 0)))
            else:
                self.unsynced.pop(path, None)
        if command is not None:
            self.fired.append(
                {"point": point, "occurrence": index, "kind": command.kind}
            )
        return command

    def apply_power_loss(self) -> list[tuple[str, int]]:
        """Truncate every file with un-fsync'd bytes back to its durable
        length — what the disk looks like after the power comes back."""
        lost: list[tuple[str, int]] = []
        for path, durable in sorted(self.unsynced.items()):
            if os.path.exists(path):
                with open(path, "r+b") as handle:
                    handle.truncate(durable)
                    handle.flush()
                    os.fsync(handle.fileno())
            lost.append((path, durable))
        self.unsynced.clear()
        return lost

    def disable(self) -> None:
        """Stop injecting (hit counting continues). The drill engine
        disables a registry after a crash-count cap so a pathological
        schedule cannot livelock the run in an eternal restart loop."""
        self.enabled = False


# ----------------------------------------------------------------------
# The armed registry. Production seams call :func:`fault_hit`; with no
# registry armed it is a single None check.
# ----------------------------------------------------------------------

_ACTIVE: FaultPoints | None = None


def arm(registry: FaultPoints) -> FaultPoints:
    global _ACTIVE
    _ACTIVE = registry
    return registry


def disarm() -> None:
    global _ACTIVE
    _ACTIVE = None


class armed:
    """``with armed(registry): ...`` — arm for a scope, always disarm."""

    def __init__(self, registry: FaultPoints):
        self.registry = registry

    def __enter__(self) -> FaultPoints:
        return arm(self.registry)

    def __exit__(self, *exc_info) -> None:
        disarm()


def fault_hit(point: str, **context) -> FaultCommand | None:
    """The seam call threaded into production code. No-op when disarmed."""
    registry = _ACTIVE
    if registry is None:
        return None
    return registry.hit(point, **context)


def raise_if_crash(command: FaultCommand | None, point: str) -> None:
    """Honour a before-the-operation crash command at ``point``."""
    if command is None:
        return
    if command.kind == "crash":
        raise SimulatedCrash(point)
    if command.kind == "power_crash":
        raise SimulatedCrash(point, power_loss=True)


def raise_if_crash_after(command: FaultCommand | None, point: str) -> None:
    """Honour an after-the-operation crash command at ``point``."""
    if command is not None and command.kind == "crash_after":
        raise SimulatedCrash(point)
