"""Host capacity constraints for the deployment search (§3.3.3).

The paper notes that during the search reCloud "can also quickly discard
any generated deployment plans that do not satisfy resource constraints".
This module provides the standard such constraint: each host has a number
of instance slots (total minus already-occupied), and a plan is feasible
only if every chosen host has a free slot — plus a helper that adapts the
model into the :class:`~repro.core.search.DeploymentSearch`
``resource_filter`` callable.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.plan import DeploymentPlan
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError


class CapacityModel:
    """Instance slots per host, with occupancy tracking."""

    def __init__(self, slots: dict[str, int]):
        for host, count in slots.items():
            if count < 0:
                raise ConfigurationError(
                    f"slot count of {host!r} must be >= 0, got {count}"
                )
        self._free = dict(slots)

    @classmethod
    def uniform(cls, topology: Topology, slots_per_host: int = 1) -> "CapacityModel":
        """Every host with the same slot count."""
        if slots_per_host < 0:
            raise ConfigurationError(
                f"slots_per_host must be >= 0, got {slots_per_host}"
            )
        return cls({host: slots_per_host for host in topology.hosts})

    # ------------------------------------------------------------------

    def free_slots(self, host: str) -> int:
        try:
            return self._free[host]
        except KeyError:
            raise ConfigurationError(f"no capacity recorded for host {host!r}") from None

    def fits(self, plan: DeploymentPlan) -> bool:
        """Whether every instance of the plan finds a free slot.

        Plans place instances on distinct hosts, so one free slot per
        chosen host suffices.
        """
        return all(self.free_slots(host) >= 1 for host in plan.hosts())

    def occupy(self, plan: DeploymentPlan) -> None:
        """Consume one slot per plan host (the plan was deployed).

        All-or-nothing: raises without changing state if any host lacks a
        free slot.
        """
        if not self.fits(plan):
            raise ConfigurationError("plan does not fit the remaining capacity")
        for host in plan.hosts():
            self._free[host] -= 1

    def release(self, plan: DeploymentPlan) -> None:
        """Return the slots of a previously-deployed plan."""
        for host in plan.hosts():
            self._free[host] += 1

    def occupy_hosts(self, hosts: Iterable[str], slots: int = 1) -> None:
        """Mark external load (instances placed outside reCloud)."""
        for host in hosts:
            if self.free_slots(host) < slots:
                raise ConfigurationError(f"host {host!r} lacks {slots} free slots")
            self._free[host] -= slots

    def feasible_host_count(self) -> int:
        """How many hosts still have at least one free slot."""
        return sum(1 for free in self._free.values() if free >= 1)

    def as_resource_filter(self):
        """Adapter for ``DeploymentSearch(resource_filter=...)``."""
        return self.fits
