"""Host workload model used by the multi-objective search (§4.2.2).

The paper reflects the typically-low utilisation of data centers [12, 64]
by drawing each host's workload from N(0.2, 0.05), clipped to [0, 1]. The
model also supports random drift so examples can exercise reCloud's
quick adaptation to varying conditions "collected at (near) real-time".
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.topology.base import Topology
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng


class HostWorkloadModel:
    """Per-host workload in [0, 1] (0 = idle, 1 = saturated)."""

    def __init__(self, workloads: dict[str, float]):
        for host, load in workloads.items():
            if not 0.0 <= load <= 1.0:
                raise ConfigurationError(
                    f"workload of {host!r} must be in [0, 1], got {load}"
                )
        self._workloads = dict(workloads)

    @classmethod
    def paper_default(
        cls,
        topology: Topology,
        mean: float = 0.2,
        stddev: float = 0.05,
        seed: int | np.random.Generator | None = None,
    ) -> "HostWorkloadModel":
        """The evaluation setting: workload ~ N(0.2, 0.05), clipped."""
        rng = make_rng(seed)
        draws = np.clip(rng.normal(mean, stddev, size=len(topology.hosts)), 0.0, 1.0)
        return cls(dict(zip(topology.hosts, (float(d) for d in draws))))

    @classmethod
    def uniform(cls, topology: Topology, load: float = 0.0) -> "HostWorkloadModel":
        """Every host at the same load (workload-agnostic searches)."""
        return cls({host: load for host in topology.hosts})

    # ------------------------------------------------------------------

    def workload_of(self, host: str) -> float:
        try:
            return self._workloads[host]
        except KeyError:
            raise ConfigurationError(f"no workload recorded for host {host!r}") from None

    def average(self, hosts: Iterable[str]) -> float:
        """Mean workload over a host set (a plan's utilisation cost)."""
        values = [self.workload_of(h) for h in hosts]
        if not values:
            raise ConfigurationError("cannot average over zero hosts")
        return sum(values) / len(values)

    def rank_least_loaded(self, hosts: Sequence[str] | None = None) -> list[str]:
        """Hosts ordered from least to most loaded (ties break on host id,
        keeping the ordering deterministic)."""
        pool = list(self._workloads if hosts is None else hosts)
        return sorted(pool, key=lambda h: (self.workload_of(h), h))

    def set_workload(self, host: str, load: float) -> None:
        """Point update from a (near real-time) monitoring feed."""
        if not 0.0 <= load <= 1.0:
            raise ConfigurationError(f"workload must be in [0, 1], got {load}")
        if host not in self._workloads:
            raise ConfigurationError(f"no workload recorded for host {host!r}")
        self._workloads[host] = load

    def drift(
        self, stddev: float = 0.02, seed: int | np.random.Generator | None = None
    ) -> None:
        """Randomly perturb every host's load (simulated telemetry tick)."""
        rng = make_rng(seed)
        for host in self._workloads:
            noisy = self._workloads[host] + float(rng.normal(0.0, stddev))
            self._workloads[host] = min(1.0, max(0.0, noisy))

    def snapshot(self) -> dict[str, float]:
        """A copy of the current per-host workloads."""
        return dict(self._workloads)

    def __len__(self) -> int:
        return len(self._workloads)
