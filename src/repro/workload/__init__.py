"""Host workload models and capacity constraints."""

from repro.workload.capacity import CapacityModel
from repro.workload.model import HostWorkloadModel

__all__ = ["CapacityModel", "HostWorkloadModel"]
