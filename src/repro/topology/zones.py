"""Multi-zone topologies: several fat-tree zones joined by WAN routers.

The paper models one data center — a single fat-tree with a border pod
(§3.1). Real deployments span *availability zones*: independent data
centers with their own power feeds, cooling plants and control planes,
joined by long-haul WAN paths. Two properties matter for reliability:

* **Zone-correlated failures.** A zone's shared roots (power feed,
  cooling, control plane) are single dependencies of every element in
  the zone, so one root failure takes the whole zone down at once. The
  roots are attached as shared fault-tree dependencies by
  :func:`repro.faults.inventory.attach_zone_shared_roots`.
* **WAN paths with their own fault model.** The inter-zone paths are
  modelled as :data:`~repro.faults.component.ComponentType.WAN_ROUTER`
  *nodes* between the zones' border switches rather than bare links,
  because shared fault trees attach to graph-node subjects — a router
  node carries the WAN path's failure probability and any conduit
  dependencies, and the assessors evaluate it like any other switch.

Construction: each zone replicates the k-ary fat-tree wiring of
:class:`~repro.topology.fattree.FatTreeTopology` under a ``<zone>/``
prefix (cores, a border pod, k-1 host pods); every zone's border
switches count as border switches of the joined topology (each zone has
its own external peering). Each zone then gets ``wan_routers_per_zone``
WAN routers, attached to all of the zone's border switches, and routers
of the same plane index are fully meshed across zones.

:class:`MultiZoneTopology` deliberately does **not** subclass
:class:`FatTreeTopology`: the fat-tree's specialised routing engine
assumes a single tree, so :func:`repro.routing.base.engine_for` must
fall through to the generic union-find reachability engine here.
"""

from __future__ import annotations

import numpy as np

from repro.faults.component import ComponentType
from repro.faults.probability import ProbabilityPolicy
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError, TopologyError


class MultiZoneTopology(Topology):
    """Two or more fat-tree zones joined by a WAN router mesh."""

    def __init__(
        self,
        zones: int = 2,
        k: int = 4,
        wan_routers_per_zone: int = 1,
        name: str | None = None,
        probability_policy: ProbabilityPolicy | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        if zones < 2:
            raise ConfigurationError(f"a multi-zone topology needs >= 2 zones, got {zones}")
        if k < 4 or k % 2 != 0:
            raise ConfigurationError(f"fat-tree arity k must be an even integer >= 4, got {k}")
        if wan_routers_per_zone < 1:
            raise ConfigurationError(
                f"need at least one WAN router per zone, got {wan_routers_per_zone}"
            )
        super().__init__(
            name=name or f"multizone-{zones}x-k{k}",
            probability_policy=probability_policy,
            seed=seed,
        )
        self.ports_per_switch = k
        self.k = k
        self.radix = k // 2
        self.num_zones = zones
        self.wan_routers_per_zone = wan_routers_per_zone
        self.zone_names: list[str] = [f"zone{z}" for z in range(zones)]

        # Fast-path lookups, filled during construction:
        self.host_edge: dict[str, str] = {}
        self.hosts_by_zone: dict[str, list[str]] = {z: [] for z in self.zone_names}
        self.borders_by_zone: dict[str, list[str]] = {z: [] for z in self.zone_names}
        self.wan_by_zone: dict[str, list[str]] = {z: [] for z in self.zone_names}

        for zone in self.zone_names:
            self._build_zone(zone)
        self._build_wan_mesh()
        self._freeze()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_zone(self, zone: str) -> None:
        """One k-ary fat-tree with a border pod, ids prefixed ``<zone>/``."""
        r = self.radix
        core_ids: dict[tuple[int, int], str] = {}

        for group in range(r):
            for j in range(r):
                cid = f"{zone}/core/{group}/{j}"
                core_ids[(group, j)] = cid
                self._add_switch(
                    cid, ComponentType.CORE_SWITCH, zone=zone, group=group, index=j
                )

        for group in range(r):
            bid = f"{zone}/border/{group}"
            self._add_switch(bid, ComponentType.BORDER_SWITCH, zone=zone, group=group)
            self.borders_by_zone[zone].append(bid)
            for j in range(r):
                self._add_link(bid, core_ids[(group, j)], zone=zone)

        for pod in range(self.k - 1):
            pod_label = f"{zone}/{pod}"
            agg_ids = []
            for group in range(r):
                aid = f"{zone}/agg/{pod}/{group}"
                agg_ids.append(aid)
                self._add_switch(
                    aid,
                    ComponentType.AGGREGATION_SWITCH,
                    zone=zone,
                    pod=pod_label,
                    group=group,
                )
                for j in range(r):
                    self._add_link(aid, core_ids[(group, j)], zone=zone)
            for edge in range(r):
                eid = f"{zone}/edge/{pod}/{edge}"
                self._add_switch(
                    eid, ComponentType.EDGE_SWITCH, zone=zone, pod=pod_label, index=edge
                )
                for aid in agg_ids:
                    self._add_link(eid, aid, zone=zone)
                for h in range(r):
                    hid = f"{zone}/host/{pod}/{edge}/{h}"
                    self._add_host(hid, zone=zone, pod=pod_label, edge=edge, index=h)
                    self._add_link(hid, eid, zone=zone)
                    self.host_edge[hid] = eid
                    self.hosts_by_zone[zone].append(hid)

    def _build_wan_mesh(self) -> None:
        """WAN routers per zone, meshed plane-by-plane across zones."""
        for zone in self.zone_names:
            for plane in range(self.wan_routers_per_zone):
                wid = f"wan/{zone}/{plane}"
                self._add_switch(wid, ComponentType.WAN_ROUTER, zone=zone, plane=plane)
                self.wan_by_zone[zone].append(wid)
                for bid in self.borders_by_zone[zone]:
                    self._add_link(wid, bid, zone=zone)
        for i, zone_a in enumerate(self.zone_names):
            for zone_b in self.zone_names[i + 1 :]:
                for plane in range(self.wan_routers_per_zone):
                    self._add_link(
                        self.wan_by_zone[zone_a][plane],
                        self.wan_by_zone[zone_b][plane],
                    )

    # ------------------------------------------------------------------
    # Zone queries
    # ------------------------------------------------------------------

    def zone_of(self, component_id: str) -> str | None:
        """The zone a component belongs to (``None`` for inter-zone links)."""
        return self.component(component_id).attributes.get("zone")

    def hosts_in_zone(self, zone: str) -> list[str]:
        """All host ids of one zone, in construction order."""
        self._check_zone(zone)
        return list(self.hosts_by_zone[zone])

    def border_switches_in_zone(self, zone: str) -> list[str]:
        """The border switches of one zone."""
        self._check_zone(zone)
        return list(self.borders_by_zone[zone])

    def wan_routers_in_zone(self, zone: str) -> list[str]:
        """The WAN routers homed in one zone."""
        self._check_zone(zone)
        return list(self.wan_by_zone[zone])

    def zone_elements(self, zone: str) -> list[str]:
        """Every graph node (host/switch/router) belonging to one zone."""
        self._check_zone(zone)
        return [
            cid
            for cid, component in self.components.items()
            if component.component_type is not ComponentType.LINK
            and component.attributes.get("zone") == zone
        ]

    def _check_zone(self, zone: str) -> None:
        if zone not in self.hosts_by_zone:
            raise TopologyError(
                f"unknown zone {zone!r}; topology has {self.zone_names}"
            )

    # ------------------------------------------------------------------
    # Structure queries used by routing and symmetry
    # ------------------------------------------------------------------

    def pod_of(self, component_id: str) -> str | None:
        """Zone-qualified pod label of a host/edge/agg switch, else ``None``.

        Labels are ``"<zone>/<pod index>"`` so pods of different zones are
        distinct groups in symmetry surgery graphs.
        """
        return self.component(component_id).attributes.get("pod")

    def edge_switch_of(self, host_id: str) -> str:
        # O(1) override of the generic graph lookup.
        try:
            return self.host_edge[host_id]
        except KeyError:
            return super().edge_switch_of(host_id)

    def symmetry_class_of(self, component_id: str) -> str:
        """Tier label qualified by zone.

        Within a zone each tier is vertex-transitive, exactly as in a
        single fat-tree — but zones are *not* interchangeable: their
        shared roots and WAN attachments carry independent failure
        probabilities, so elements that differ only by zone must land in
        different symmetry classes (a conservative refinement; it can
        only suppress equivalence verdicts, never fabricate them).
        """
        component = self.component(component_id)
        zone = component.attributes.get("zone")
        tier = component.component_type.value
        return f"{zone}:{tier}" if zone is not None else tier
