"""Two-tier leaf-spine topology.

reCloud is architecture-agnostic (§3.1, §3.2): only the routing step of
route-and-check changes per architecture. This module provides a second
architecture beyond fat-tree to demonstrate that generality — a standard
leaf-spine (folded Clos) fabric where every leaf (ToR) switch connects to
every spine switch, hosts hang off leaves, and dedicated border switches
attached to all spines provide external connectivity.
"""

from __future__ import annotations

import numpy as np

from repro.faults.component import ComponentType
from repro.faults.probability import ProbabilityPolicy
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError


class LeafSpineTopology(Topology):
    """A leaf-spine fabric with dedicated border switches.

    Args:
        spines: Number of spine switches.
        leaves: Number of leaf (ToR) switches; each is one rack.
        hosts_per_leaf: Hosts attached to each leaf.
        border_switches: Border switches, each connected to every spine.
    """

    def __init__(
        self,
        spines: int,
        leaves: int,
        hosts_per_leaf: int,
        border_switches: int = 2,
        name: str | None = None,
        probability_policy: ProbabilityPolicy | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        if min(spines, leaves, hosts_per_leaf, border_switches) < 1:
            raise ConfigurationError(
                "spines, leaves, hosts_per_leaf and border_switches must all be >= 1"
            )
        super().__init__(
            name=name or f"leaf-spine-{spines}x{leaves}",
            probability_policy=probability_policy,
            seed=seed,
        )
        self.ports_per_switch = max(leaves + border_switches, spines + hosts_per_leaf)
        self.num_spines = spines
        self.num_leaves = leaves
        self.hosts_per_leaf = hosts_per_leaf

        self.spine_ids: list[str] = []
        self.leaf_ids: list[str] = []
        self.host_leaf: dict[str, str] = {}

        self._build(border_switches)
        self._freeze()

    def _build(self, border_switches: int) -> None:
        for s in range(self.num_spines):
            sid = f"spine/{s}"
            self.spine_ids.append(sid)
            # Spines play the role of the fat-tree core tier.
            self._add_switch(sid, ComponentType.CORE_SWITCH, index=s)

        for b in range(border_switches):
            bid = f"border/{b}"
            self._add_switch(bid, ComponentType.BORDER_SWITCH, index=b)
            for sid in self.spine_ids:
                self._add_link(bid, sid)

        for leaf in range(self.num_leaves):
            lid = f"leaf/{leaf}"
            self.leaf_ids.append(lid)
            self._add_switch(lid, ComponentType.EDGE_SWITCH, index=leaf)
            for sid in self.spine_ids:
                self._add_link(lid, sid)
            for h in range(self.hosts_per_leaf):
                hid = f"host/{leaf}/{h}"
                self._add_host(hid, leaf=leaf, index=h)
                self._add_link(hid, lid)
                self.host_leaf[hid] = lid

    def edge_switch_of(self, host_id: str) -> str:
        try:
            return self.host_leaf[host_id]
        except KeyError:
            return super().edge_switch_of(host_id)

    def symmetry_class_of(self, component_id: str) -> str:
        """Leaf-spine fabrics are tier-transitive, like fat-trees."""
        return self.component(component_id).component_type.value
