"""Data-center topologies: the abstraction plus concrete architectures."""

from repro.topology.base import Topology, TopologySummary, validate_hosts_exist
from repro.topology.fattree import FatTreeTopology
from repro.topology.leafspine import LeafSpineTopology
from repro.topology.presets import (
    PAPER_SCALES,
    SCALE_ORDER,
    ScaleSpec,
    paper_topology,
)
from repro.topology.zones import MultiZoneTopology

__all__ = [
    "FatTreeTopology",
    "LeafSpineTopology",
    "MultiZoneTopology",
    "PAPER_SCALES",
    "SCALE_ORDER",
    "ScaleSpec",
    "Topology",
    "TopologySummary",
    "paper_topology",
    "validate_hosts_exist",
]
