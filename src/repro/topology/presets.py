"""The paper's four evaluation topologies (Table 2, §4.1).

Four fat-trees represent data centers from tiny to large scale:

============= ===== ====== ====== ====== ======== =======
scale           k   cores   aggs  edges  borders   hosts
============= ===== ====== ====== ====== ======== =======
tiny            8     16     28     28      4        112
small          16     64    120    120      8        960
medium         24    144    276    276     12      3,312
large          48    576  1,128  1,128     24     27,072
============= ===== ====== ====== ====== ======== =======

Each data center additionally gets 5 power supplies assigned round-robin to
every switch and to the host group under every edge switch (see
:mod:`repro.faults.inventory`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.probability import ProbabilityPolicy
from repro.topology.fattree import FatTreeTopology
from repro.util.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class ScaleSpec:
    """Expected parameters and counts for one paper scale (Table 2)."""

    name: str
    k: int
    core_switches: int
    aggregation_switches: int
    edge_switches: int
    border_switches: int
    hosts: int
    power_supplies: int = 5


#: Table 2 of the paper, exactly.
PAPER_SCALES: dict[str, ScaleSpec] = {
    "tiny": ScaleSpec("tiny", 8, 16, 28, 28, 4, 112),
    "small": ScaleSpec("small", 16, 64, 120, 120, 8, 960),
    "medium": ScaleSpec("medium", 24, 144, 276, 276, 12, 3_312),
    "large": ScaleSpec("large", 48, 576, 1_128, 1_128, 24, 27_072),
}

SCALE_ORDER = ("tiny", "small", "medium", "large")


def paper_topology(
    scale: str,
    probability_policy: ProbabilityPolicy | None = None,
    seed: int | np.random.Generator | None = None,
) -> FatTreeTopology:
    """Build one of the paper's four fat-tree data centers by scale name."""
    try:
        spec = PAPER_SCALES[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {scale!r}; expected one of {sorted(PAPER_SCALES)}"
        ) from None
    return FatTreeTopology(
        k=spec.k,
        name=f"{spec.name}-dc",
        probability_policy=probability_policy,
        seed=seed,
    )


#: The scale the search benchmark gates its wall-clock budget on: the
#: k=48 "large" data center (~27k hosts), where per-move overheads the
#: tiny preset hides (host scans, closure growth, signature hashing)
#: actually show up in the wall clock.
SEARCH_BENCHMARK_SCALE = "large"


def search_benchmark_topology(
    probability_policy: ProbabilityPolicy | None = None,
    seed: int | np.random.Generator | None = None,
) -> FatTreeTopology:
    """The k=48 fat-tree (Table 2 "large") the search benchmark runs on."""
    return paper_topology(SEARCH_BENCHMARK_SCALE, probability_policy, seed)
