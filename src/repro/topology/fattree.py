"""Fat-tree data-center topology with a dedicated border pod (§3.1, Fig. 1).

The classic k-ary fat-tree [3] has k pods, each with k/2 edge and k/2
aggregation switches, and (k/2)^2 core switches. Following Google's
approach to external connectivity [69], one pod is dedicated to peering:
its k/2 switches are the *border switches*, attached to the core exactly
like aggregation switches, which gives the full external bandwidth to all
remaining k-1 pods. The component counts of this construction match the
paper's Table 2 for k = 8, 16, 24 and 48.

Indexing convention (the standard fat-tree wiring):

* Core switches form a (k/2) x (k/2) grid ``core/<g>/<j>``; group ``g``
  connects to the g-th aggregation switch of every pod.
* Pod ``p`` (0 <= p <= k-2) has aggregation switches ``agg/<p>/<g>``,
  edge switches ``edge/<p>/<e>`` and hosts ``host/<p>/<e>/<h>``.
* The border pod has switches ``border/<g>``, with ``border/<g>``
  connected to all cores of group ``g``.
"""

from __future__ import annotations

import numpy as np

from repro.faults.component import ComponentType
from repro.faults.probability import ProbabilityPolicy
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError


class FatTreeTopology(Topology):
    """A k-ary fat-tree with one pod dedicated to external connectivity."""

    def __init__(
        self,
        k: int,
        name: str | None = None,
        probability_policy: ProbabilityPolicy | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        if k < 4 or k % 2 != 0:
            raise ConfigurationError(f"fat-tree arity k must be an even integer >= 4, got {k}")
        super().__init__(
            name=name or f"fat-tree-k{k}",
            probability_policy=probability_policy,
            seed=seed,
        )
        self.ports_per_switch = k
        self.k = k
        self.radix = k // 2
        self.num_pods = k - 1  # pods carrying hosts; one pod is the border pod

        # Fast-path routing structure, filled during construction:
        self.host_edge: dict[str, str] = {}
        self.edge_pod: dict[str, int] = {}
        self.agg_ids: dict[tuple[int, int], str] = {}  # (pod, group) -> agg id
        self.core_ids: dict[tuple[int, int], str] = {}  # (group, j) -> core id
        self.border_ids: dict[int, str] = {}  # group -> border id

        self._build()
        self._freeze()

    def _build(self) -> None:
        r = self.radix

        for group in range(r):
            for j in range(r):
                cid = f"core/{group}/{j}"
                self.core_ids[(group, j)] = cid
                self._add_switch(cid, ComponentType.CORE_SWITCH, group=group, index=j)

        for group in range(r):
            bid = f"border/{group}"
            self.border_ids[group] = bid
            self._add_switch(bid, ComponentType.BORDER_SWITCH, group=group)
            for j in range(r):
                self._add_link(bid, self.core_ids[(group, j)])

        for pod in range(self.num_pods):
            for group in range(r):
                aid = f"agg/{pod}/{group}"
                self.agg_ids[(pod, group)] = aid
                self._add_switch(
                    aid, ComponentType.AGGREGATION_SWITCH, pod=pod, group=group
                )
                for j in range(r):
                    self._add_link(aid, self.core_ids[(group, j)])
            for edge in range(r):
                eid = f"edge/{pod}/{edge}"
                self.edge_pod[eid] = pod
                self._add_switch(eid, ComponentType.EDGE_SWITCH, pod=pod, index=edge)
                for group in range(r):
                    self._add_link(eid, self.agg_ids[(pod, group)])
                for h in range(r):
                    hid = f"host/{pod}/{edge}/{h}"
                    self._add_host(hid, pod=pod, edge=edge, index=h)
                    self._add_link(hid, eid)
                    self.host_edge[hid] = eid

    # ------------------------------------------------------------------
    # Structure queries used by the fast route-and-check path
    # ------------------------------------------------------------------

    def pod_of(self, component_id: str) -> int | None:
        """The pod index of a host/edge/aggregation switch, else ``None``."""
        return self.component(component_id).attributes.get("pod")

    def edge_switch_of(self, host_id: str) -> str:
        # O(1) override of the generic graph lookup.
        try:
            return self.host_edge[host_id]
        except KeyError:
            return super().edge_switch_of(host_id)

    def aggregation_switches_of_pod(self, pod: int) -> list[str]:
        """Aggregation switch ids of one pod, ordered by core group."""
        return [self.agg_ids[(pod, g)] for g in range(self.radix)]

    def cores_of_group(self, group: int) -> list[str]:
        """Core switch ids of one core group."""
        return [self.core_ids[(group, j)] for j in range(self.radix)]

    def border_switch_of_group(self, group: int) -> str:
        """The border switch attached to core group ``group``."""
        return self.border_ids[group]

    def symmetry_class_of(self, component_id: str) -> str:
        """Fat-trees are vertex-transitive within each tier.

        Every host is automorphic to every other host (pods and edge
        positions can be permuted), and likewise within each switch tier,
        so the tier name is the symmetry class.
        """
        return self.component(component_id).component_type.value
