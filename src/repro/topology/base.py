"""Data-center topology abstraction.

A :class:`Topology` is a graph of network components — hosts, switches and
the links between them — plus the set of *border switches* that peer with
external entities (§3.1). Every network element is a two-state
:class:`~repro.faults.component.Component`, so samplers and the
route-and-check engine can treat a topology uniformly regardless of its
architecture. Architecture-specific subclasses (fat-tree, leaf-spine)
populate the graph and may expose extra structure for fast routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import networkx as nx
import numpy as np

from repro.faults.component import Component, ComponentType, link_id
from repro.faults.probability import PaperProbabilityPolicy, ProbabilityPolicy
from repro.util.errors import TopologyError
from repro.util.rng import make_rng


@dataclass(frozen=True, slots=True)
class TopologySummary:
    """Component counts of a topology, as reported in the paper's Table 2."""

    name: str
    ports_per_switch: int
    core_switches: int
    aggregation_switches: int
    edge_switches: int
    border_switches: int
    hosts: int
    links: int

    @property
    def total_switches(self) -> int:
        return (
            self.core_switches
            + self.aggregation_switches
            + self.edge_switches
            + self.border_switches
        )

    @property
    def total_components(self) -> int:
        """Hosts + switches + links (network components only)."""
        return self.hosts + self.total_switches + self.links


class Topology:
    """A data-center network: typed components connected by links.

    Nodes of the underlying :mod:`networkx` graph are component ids of
    hosts and switches; each edge carries the id of its link component.
    Subclasses call the ``_add_*`` builders during construction and then
    :meth:`_freeze`.
    """

    def __init__(
        self,
        name: str,
        probability_policy: ProbabilityPolicy | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        self.name = name
        self._policy = probability_policy or PaperProbabilityPolicy()
        self._rng = make_rng(seed)
        self.graph = nx.Graph()
        self.components: dict[str, Component] = {}
        self.hosts: list[str] = []
        self.border_switches: list[str] = []
        self._frozen = False

    # ------------------------------------------------------------------
    # Construction API (used by subclasses)
    # ------------------------------------------------------------------

    def _assert_mutable(self) -> None:
        if self._frozen:
            raise TopologyError(f"topology {self.name!r} is frozen")

    def _add_component(
        self, component_id: str, component_type: ComponentType, **attributes
    ) -> Component:
        self._assert_mutable()
        if component_id in self.components:
            raise TopologyError(f"duplicate component id {component_id!r}")
        probability = self._policy.probability_for(component_type, self._rng)
        component = Component(
            component_id=component_id,
            component_type=component_type,
            failure_probability=probability,
            attributes=attributes,
        )
        self.components[component_id] = component
        return component

    def _add_host(self, component_id: str, **attributes) -> Component:
        component = self._add_component(component_id, ComponentType.HOST, **attributes)
        self.graph.add_node(component_id)
        self.hosts.append(component_id)
        return component

    def _add_switch(
        self, component_id: str, component_type: ComponentType, **attributes
    ) -> Component:
        if not component_type.is_switch:
            raise TopologyError(f"{component_type} is not a switch type")
        component = self._add_component(component_id, component_type, **attributes)
        self.graph.add_node(component_id)
        if component_type is ComponentType.BORDER_SWITCH:
            self.border_switches.append(component_id)
        return component

    def _add_link(self, endpoint_a: str, endpoint_b: str, **attributes) -> Component:
        self._assert_mutable()
        for endpoint in (endpoint_a, endpoint_b):
            if endpoint not in self.graph:
                raise TopologyError(f"link endpoint {endpoint!r} does not exist")
        if self.graph.has_edge(endpoint_a, endpoint_b):
            raise TopologyError(f"duplicate link {endpoint_a!r} -- {endpoint_b!r}")
        cid = link_id(endpoint_a, endpoint_b)
        component = self._add_component(cid, ComponentType.LINK, **attributes)
        self.graph.add_edge(endpoint_a, endpoint_b, component_id=cid)
        return component

    def _freeze(self) -> None:
        """Validate and seal the topology after construction."""
        if not self.hosts:
            raise TopologyError(f"topology {self.name!r} has no hosts")
        if not self.border_switches:
            raise TopologyError(
                f"topology {self.name!r} has no border switches for external "
                "connectivity"
            )
        self._frozen = True

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------

    def component(self, component_id: str) -> Component:
        """The component with ``component_id``; raises on unknown ids."""
        try:
            return self.components[component_id]
        except KeyError:
            raise TopologyError(f"unknown component {component_id!r}") from None

    def components_of_type(self, component_type: ComponentType) -> list[Component]:
        """All components of one type, in insertion order."""
        return [
            c for c in self.components.values() if c.component_type is component_type
        ]

    @property
    def switches(self) -> list[str]:
        """Ids of every switch (all tiers, including border switches)."""
        return [
            c.component_id for c in self.components.values() if c.component_type.is_switch
        ]

    def link_between(self, endpoint_a: str, endpoint_b: str) -> Component:
        """The link component connecting two adjacent elements."""
        data = self.graph.get_edge_data(endpoint_a, endpoint_b)
        if data is None:
            raise TopologyError(f"no link between {endpoint_a!r} and {endpoint_b!r}")
        return self.components[data["component_id"]]

    def neighbors(self, component_id: str) -> list[str]:
        """Adjacent hosts/switches of a network element."""
        if component_id not in self.graph:
            raise TopologyError(f"unknown network element {component_id!r}")
        return list(self.graph.neighbors(component_id))

    def edge_switch_of(self, host_id: str) -> str:
        """The (single) switch a host attaches to."""
        neighbors = self.neighbors(host_id)
        if len(neighbors) != 1:
            raise TopologyError(
                f"host {host_id!r} attaches to {len(neighbors)} switches; "
                "expected exactly one"
            )
        return neighbors[0]

    def rack_of(self, host_id: str) -> str:
        """The rack a host lives in.

        By default a rack is identified with the host's edge/ToR switch,
        which matches how the paper's common-practice baseline spreads
        instances across racks (§4.2.2).
        """
        return self.edge_switch_of(host_id)

    def hosts_in_rack(self, rack_id: str) -> list[str]:
        """All hosts attached to the given rack's edge switch."""
        if rack_id not in self.graph:
            raise TopologyError(f"unknown rack {rack_id!r}")
        return [
            n
            for n in self.graph.neighbors(rack_id)
            if self.components[n].component_type is ComponentType.HOST
        ]

    def racks(self) -> list[str]:
        """Every rack id (edge switches that have at least one host)."""
        seen: dict[str, None] = {}
        for host in self.hosts:
            seen.setdefault(self.rack_of(host), None)
        return list(seen)

    def failure_probabilities(self) -> dict[str, float]:
        """Map of component id -> failure probability for every component."""
        return {
            cid: component.failure_probability
            for cid, component in self.components.items()
        }

    def override_probabilities(self, overrides: Mapping[str, float]) -> None:
        """Replace failure probabilities for selected components.

        Supports the paper's bathtub-curve updates and what-if studies.
        Allowed on frozen topologies because it changes no structure.
        """
        for cid, probability in overrides.items():
            self.components[cid] = self.component(cid).with_probability(probability)

    def summarize(self) -> TopologySummary:
        """Component counts in the shape of the paper's Table 2."""
        by_type = {ctype: 0 for ctype in ComponentType}
        for component in self.components.values():
            by_type[component.component_type] += 1
        return TopologySummary(
            name=self.name,
            ports_per_switch=getattr(self, "ports_per_switch", 0),
            core_switches=by_type[ComponentType.CORE_SWITCH],
            aggregation_switches=by_type[ComponentType.AGGREGATION_SWITCH],
            edge_switches=by_type[ComponentType.EDGE_SWITCH],
            border_switches=by_type[ComponentType.BORDER_SWITCH],
            hosts=by_type[ComponentType.HOST],
            links=by_type[ComponentType.LINK],
        )

    # ------------------------------------------------------------------
    # Symmetry support (network transformations, §3.3.1 Step 3)
    # ------------------------------------------------------------------

    def symmetry_class_of(self, component_id: str) -> str:
        """A label such that automorphic elements share a label.

        The base implementation distinguishes only component types;
        architecture subclasses refine it (e.g. per switch tier and pod
        role). Failure-probability classes are layered on separately by the
        transformations module, because §3.3.1 treats same-type components
        with very different probabilities as logically different types.
        """
        return self.component(component_id).component_type.value

    def __contains__(self, component_id: str) -> bool:
        return component_id in self.components

    def __repr__(self) -> str:
        s = self.summarize()
        return (
            f"<{type(self).__name__} {self.name!r}: {s.hosts} hosts, "
            f"{s.total_switches} switches, {s.links} links>"
        )


def validate_hosts_exist(topology: Topology, host_ids: Iterable[str]) -> None:
    """Raise :class:`TopologyError` unless every id names a host."""
    for host_id in host_ids:
        component = topology.component(host_id)
        if component.component_type is not ComponentType.HOST:
            raise TopologyError(f"{host_id!r} is a {component.component_type.value}, not a host")
