"""Failure-probability models and assignment policies.

The paper measures each component's failure probability as
``p = downtime / window_length`` (§2.1) and, in the evaluation (§4.1), draws
switch probabilities from N(0.008, 0.001) and every other component's from
N(0.01, 0.001), rounded to 4 decimal places. This module implements that
setting, the bathtub-curve lifetime adjustment (§3.2.2), and the
limited-information policies of §3.4 (default value, or weights from an
analytic hierarchy process).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.faults.component import ComponentType
from repro.util.errors import ConfigurationError

#: Decimal places the paper rounds failure probabilities to (§4.1).
PROBABILITY_DECIMALS = 4

#: Hours in a (non-leap) year; used to convert downtime to annual rates.
HOURS_PER_YEAR = 365 * 24


def failure_probability_from_downtime(
    downtime_hours: float, window_hours: float = HOURS_PER_YEAR
) -> float:
    """The paper's estimator: p = downtime / window length (§2.1)."""
    if window_hours <= 0:
        raise ConfigurationError(f"window must be positive, got {window_hours}")
    if not 0 <= downtime_hours <= window_hours:
        raise ConfigurationError(
            f"downtime {downtime_hours}h must lie within the {window_hours}h window"
        )
    return downtime_hours / window_hours


def annual_downtime_hours(reliability: float) -> float:
    """Translate a reliability score into annual downtime hours.

    The paper reports, e.g., 99.62 % reliability as 33.3 hours of downtime
    per year and 99.97 % as 2.6 hours (§4.2.2).
    """
    if not 0.0 <= reliability <= 1.0:
        raise ConfigurationError(f"reliability must be in [0, 1], got {reliability}")
    return (1.0 - reliability) * HOURS_PER_YEAR


@dataclass(frozen=True, slots=True)
class NormalProbabilityModel:
    """Per-type normal distributions for failure probabilities (§4.1).

    Draws are clipped into ``(minimum, maximum)`` and rounded to
    ``PROBABILITY_DECIMALS`` places, exactly as the paper describes. The
    clip floor is strictly positive so dagger cycle lengths stay finite.
    """

    mean: float
    stddev: float
    minimum: float = 1e-4
    maximum: float = 0.5

    def __post_init__(self) -> None:
        if self.stddev < 0:
            raise ConfigurationError(f"stddev must be >= 0, got {self.stddev}")
        if not 0 < self.minimum <= self.maximum < 1:
            raise ConfigurationError(
                f"need 0 < minimum <= maximum < 1, got [{self.minimum}, {self.maximum}]"
            )

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one probability (or ``size`` of them) from the model."""
        draws = rng.normal(self.mean, self.stddev, size=size)
        draws = np.clip(draws, self.minimum, self.maximum)
        draws = np.round(draws, PROBABILITY_DECIMALS)
        # Rounding can push a draw below the positive floor; re-clip.
        draws = np.maximum(draws, 10.0**-PROBABILITY_DECIMALS)
        if size is None:
            return float(draws)
        return draws


#: The evaluation setting of §4.1: switches ~ N(0.008, 0.001), all other
#: components ~ N(0.01, 0.001).
PAPER_SWITCH_MODEL = NormalProbabilityModel(mean=0.008, stddev=0.001)
PAPER_DEFAULT_MODEL = NormalProbabilityModel(mean=0.01, stddev=0.001)


class ProbabilityPolicy:
    """Assigns a failure probability to a component being created.

    Policies let the same topology builder produce the paper's evaluation
    setting, a no-information default setting (§3.4), or anything custom.
    """

    def probability_for(
        self, component_type: ComponentType, rng: np.random.Generator
    ) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class PaperProbabilityPolicy(ProbabilityPolicy):
    """The §4.1 evaluation setting, optionally overridden per type."""

    switch_model: NormalProbabilityModel = PAPER_SWITCH_MODEL
    default_model: NormalProbabilityModel = PAPER_DEFAULT_MODEL
    link_probability: float = 0.0

    def probability_for(
        self, component_type: ComponentType, rng: np.random.Generator
    ) -> float:
        if component_type is ComponentType.LINK:
            return self.link_probability
        if component_type.is_switch:
            return self.switch_model.sample(rng)
        return self.default_model.sample(rng)


@dataclass(frozen=True)
class DefaultProbabilityPolicy(ProbabilityPolicy):
    """Limited-information mode: one default probability for everything.

    §3.4: with no measured failure probabilities, reCloud assigns each
    component a default value and still avoids shared dependencies, though
    the resulting score is no longer a quantitative reliability estimate.
    """

    default_probability: float = 0.01
    link_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.default_probability < 1:
            raise ConfigurationError(
                f"default probability must be in (0, 1), got {self.default_probability}"
            )

    def probability_for(
        self, component_type: ComponentType, rng: np.random.Generator
    ) -> float:
        if component_type is ComponentType.LINK:
            return self.link_probability
        return self.default_probability


@dataclass(frozen=True)
class AhpProbabilityPolicy(ProbabilityPolicy):
    """Limited-information mode using analytic-hierarchy-process weights.

    §3.4 suggests deciding relative failure likelihoods with an AHP [65]:
    the operator supplies a pairwise-comparison judgement of how
    failure-prone each component type is relative to the others; the
    principal eigenvector of that matrix yields per-type weights, which are
    scaled so their mean matches ``base_probability``.
    """

    type_weights: Mapping[ComponentType, float]
    base_probability: float = 0.01
    link_probability: float = 0.0

    def __post_init__(self) -> None:
        if not self.type_weights:
            raise ConfigurationError("type_weights must not be empty")
        for ctype, weight in self.type_weights.items():
            if weight <= 0:
                raise ConfigurationError(f"weight for {ctype} must be positive")
        if not 0 < self.base_probability < 1:
            raise ConfigurationError(
                f"base probability must be in (0, 1), got {self.base_probability}"
            )

    @classmethod
    def from_pairwise_matrix(
        cls,
        types: list[ComponentType],
        matrix,
        base_probability: float = 0.01,
        link_probability: float = 0.0,
    ) -> "AhpProbabilityPolicy":
        """Build the policy from an AHP pairwise-comparison matrix.

        ``matrix[i][j]`` expresses how much more failure-prone ``types[i]``
        is than ``types[j]`` (Saaty's 1-9 scale). The weight vector is the
        principal right eigenvector, normalised to sum to 1.
        """
        m = np.asarray(matrix, dtype=float)
        if m.shape != (len(types), len(types)):
            raise ConfigurationError(
                f"matrix shape {m.shape} does not match {len(types)} types"
            )
        if np.any(m <= 0):
            raise ConfigurationError("pairwise comparisons must be positive")
        eigenvalues, eigenvectors = np.linalg.eig(m)
        principal = np.argmax(eigenvalues.real)
        weights = np.abs(eigenvectors[:, principal].real)
        weights = weights / weights.sum()
        return cls(
            type_weights=dict(zip(types, (float(w) for w in weights))),
            base_probability=base_probability,
            link_probability=link_probability,
        )

    def probability_for(
        self, component_type: ComponentType, rng: np.random.Generator
    ) -> float:
        if component_type is ComponentType.LINK:
            return self.link_probability
        weights = self.type_weights
        if component_type not in weights:
            return self.base_probability
        mean_weight = sum(weights.values()) / len(weights)
        scaled = self.base_probability * weights[component_type] / mean_weight
        return float(min(scaled, 0.99))


@dataclass(frozen=True, slots=True)
class BathtubCurve:
    """Lifetime-dependent failure probability (§3.2.2, [66, 79]).

    Components follow a "bathtub" shape: elevated infant-mortality failures
    early in life, a flat useful-life plateau, and rising wear-out failures
    near end of life. Modelled as the sum of a decaying exponential, a
    constant, and a growing exponential, expressed as a multiplier on the
    plateau probability.

    ``multiplier(0) == 1 + infant_factor`` and the curve approaches
    ``1 + wearout_factor`` at ``lifetime``.
    """

    plateau_probability: float
    lifetime: float = 1.0
    infant_factor: float = 2.0
    wearout_factor: float = 3.0
    infant_decay: float = 10.0
    wearout_growth: float = 10.0

    def __post_init__(self) -> None:
        if not 0 < self.plateau_probability < 1:
            raise ConfigurationError(
                f"plateau probability must be in (0, 1), got {self.plateau_probability}"
            )
        if self.lifetime <= 0:
            raise ConfigurationError(f"lifetime must be positive, got {self.lifetime}")

    def probability_at(self, age: float) -> float:
        """Failure probability at ``age`` (clamped into the lifetime)."""
        x = min(max(age, 0.0), self.lifetime) / self.lifetime
        infant = self.infant_factor * math.exp(-self.infant_decay * x)
        wearout = self.wearout_factor * math.exp(-self.wearout_growth * (1.0 - x))
        p = self.plateau_probability * (1.0 + infant + wearout)
        return min(p, 0.999999)
