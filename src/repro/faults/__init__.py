"""Fault model: components, probabilities, fault trees, dependency inventories."""

from repro.faults.component import Component, ComponentType, link_id
from repro.faults.cvss import (
    SyntheticVulnerabilityDatabase,
    Vulnerability,
    software_failure_probability,
)
from repro.faults.dependencies import DependencyModel
from repro.faults.discovery import (
    DiscoveredDependency,
    Flow,
    NetworkDependencyMiner,
    attach_discovered_dependencies,
    generate_flow_log,
)
from repro.faults.faulttree import (
    BasicEvent,
    FaultTree,
    Gate,
    GateKind,
    and_gate,
    basic,
    exact_failure_probability,
    k_of_n_gate,
    or_gate,
    trivial_tree,
)
from repro.faults.inventory import (
    attach_host_software,
    attach_power_supplies,
    attach_rack_cooling,
    attach_redundant_power,
    build_paper_inventory,
    build_rich_inventory,
)
from repro.faults.probability import (
    AhpProbabilityPolicy,
    BathtubCurve,
    DefaultProbabilityPolicy,
    NormalProbabilityModel,
    PaperProbabilityPolicy,
    ProbabilityPolicy,
    annual_downtime_hours,
    failure_probability_from_downtime,
)

__all__ = [
    "AhpProbabilityPolicy",
    "BasicEvent",
    "BathtubCurve",
    "Component",
    "ComponentType",
    "DefaultProbabilityPolicy",
    "DependencyModel",
    "DiscoveredDependency",
    "Flow",
    "NetworkDependencyMiner",
    "FaultTree",
    "Gate",
    "GateKind",
    "NormalProbabilityModel",
    "PaperProbabilityPolicy",
    "ProbabilityPolicy",
    "SyntheticVulnerabilityDatabase",
    "Vulnerability",
    "and_gate",
    "annual_downtime_hours",
    "attach_discovered_dependencies",
    "attach_host_software",
    "attach_power_supplies",
    "attach_rack_cooling",
    "attach_redundant_power",
    "basic",
    "build_paper_inventory",
    "build_rich_inventory",
    "exact_failure_probability",
    "failure_probability_from_downtime",
    "generate_flow_log",
    "k_of_n_gate",
    "link_id",
    "or_gate",
    "software_failure_probability",
    "trivial_tree",
]
