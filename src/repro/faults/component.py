"""Infrastructure components and the two-state fault model.

The paper's fault model (§2.1) covers hardware components (servers,
switches, power supplies, cooling systems), software components (OS,
libraries, firmware) and network components (links). Every component is in
one of two states — alive or failed — and partially-failed components are
treated as failed. Each component carries a failure probability ``p``
measured as downtime / window length (e.g. an annual failure rate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache


class ComponentType(enum.Enum):
    """The kinds of infrastructure components reCloud reasons about."""

    HOST = "host"
    EDGE_SWITCH = "edge_switch"
    AGGREGATION_SWITCH = "aggregation_switch"
    CORE_SWITCH = "core_switch"
    BORDER_SWITCH = "border_switch"
    WAN_ROUTER = "wan_router"
    LINK = "link"
    POWER_SUPPLY = "power_supply"
    COOLING = "cooling"
    CONTROL_PLANE = "control_plane"
    OPERATING_SYSTEM = "operating_system"
    LIBRARY = "library"
    FIRMWARE = "firmware"

    @property
    def is_switch(self) -> bool:
        """True for every switch tier, including border switches."""
        return self in _SWITCH_TYPES

    @property
    def is_network_element(self) -> bool:
        """True for components that appear in the network graph."""
        return self is ComponentType.HOST or self is ComponentType.LINK or self.is_switch

    @property
    def is_dependency(self) -> bool:
        """True for shared-dependency components outside the network graph."""
        return not self.is_network_element


_SWITCH_TYPES = frozenset(
    {
        ComponentType.EDGE_SWITCH,
        ComponentType.AGGREGATION_SWITCH,
        ComponentType.CORE_SWITCH,
        ComponentType.BORDER_SWITCH,
        # WAN routers join zones; they live in the network graph and route
        # like switches, so they share the switch failure model (§4.1).
        ComponentType.WAN_ROUTER,
    }
)


@dataclass(frozen=True, slots=True)
class Component:
    """A single two-state infrastructure component.

    Attributes:
        component_id: Globally unique identifier, e.g. ``"host/3/1/0"``.
        component_type: What kind of component this is.
        failure_probability: Probability of being failed in a sampling round
            (the paper's per-window failure probability). Must lie in [0, 1).
        attributes: Free-form metadata (pod index, rack index, vendor, ...)
            used by topology-aware code and by symmetry signatures.
    """

    component_id: str
    component_type: ComponentType
    failure_probability: float
    attributes: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        p = self.failure_probability
        if not 0.0 <= p < 1.0:
            raise ValueError(
                f"failure probability of {self.component_id} must be in [0, 1), got {p}"
            )

    @property
    def is_perfectly_reliable(self) -> bool:
        """True when the component can never fail (p == 0)."""
        return self.failure_probability == 0.0

    def with_probability(self, probability: float) -> "Component":
        """Return a copy of this component with a new failure probability.

        Components are frozen; this supports the paper's bathtub-curve
        adjustment where ``p`` changes over a component's lifetime (§3.2.2).
        """
        return Component(
            component_id=self.component_id,
            component_type=self.component_type,
            failure_probability=probability,
            attributes=dict(self.attributes),
        )


@lru_cache(maxsize=65536)
def link_id(endpoint_a: str, endpoint_b: str) -> str:
    """Canonical component id for the link between two endpoints.

    Links are undirected, so the id is order-independent. Cached: the
    routing engines ask for the same few hundred link ids on every one
    of the search's tens of thousands of assessments.
    """
    low, high = sorted((endpoint_a, endpoint_b))
    return f"link[{low}--{high}]"
