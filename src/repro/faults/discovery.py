"""Network-dependency discovery from traffic, NSDMiner-style (§2.1).

The paper acquires network dependencies with tools like NSDMiner [54, 56,
59], which passively watch traffic and infer that service A *depends on*
service B when flows to B consistently appear nested inside A's activity.
Those traffic feeds are proprietary, so this module provides the closest
synthetic equivalent end to end:

* a tiny flow-log model (:class:`Flow`) and a workload generator that
  emits flows for a ground-truth service-dependency graph, mixed with
  configurable noise traffic;
* :class:`NetworkDependencyMiner`, which re-discovers the dependency
  graph from the flow log alone using NSDMiner's nested-flow counting
  heuristic (a dependency is reported when the fraction of A's activity
  windows containing a flow to B exceeds a support threshold);
* a bridge that turns discovered dependencies into fault-tree branches on
  the hosting elements, so discovery output plugs straight into the
  reliability assessment like any other dependency information.

This closes the loop the paper sketches: monitor -> infer dependencies ->
feed reCloud.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, TYPE_CHECKING

import numpy as np

from repro.faults.component import Component, ComponentType
from repro.faults.faulttree import basic
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.dependencies import DependencyModel


@dataclass(frozen=True, slots=True)
class Flow:
    """One observed network flow between two services."""

    timestamp: float
    source_service: str
    destination_service: str

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ConfigurationError(f"negative timestamp {self.timestamp}")
        if self.source_service == self.destination_service:
            raise ConfigurationError("a service does not flow to itself")


@dataclass(frozen=True, slots=True)
class DiscoveredDependency:
    """An inferred "source depends on target" edge with its support."""

    source_service: str
    target_service: str
    support: float  # fraction of the source's activity windows


def generate_flow_log(
    dependencies: Mapping[str, Iterable[str]],
    activity_windows: int = 200,
    window_length: float = 1.0,
    noise_flows_per_window: float = 0.5,
    skip_probability: float = 0.05,
    seed: int | np.random.Generator | None = None,
) -> list[Flow]:
    """Synthesize a flow log for a ground-truth dependency graph.

    ``dependencies`` maps each service to the services it calls. Per
    activity window, each service emits one flow to each of its
    dependencies (each independently skipped with ``skip_probability``,
    modelling caching), plus Poisson noise flows between random service
    pairs (modelling unrelated chatter the miner must not mistake for
    dependencies).
    """
    if activity_windows < 1:
        raise ConfigurationError("need at least one activity window")
    if not 0 <= skip_probability < 1:
        raise ConfigurationError(
            f"skip probability must be in [0, 1), got {skip_probability}"
        )
    rng = make_rng(seed)
    services = sorted(
        set(dependencies) | {d for deps in dependencies.values() for d in deps}
    )
    if len(services) < 2:
        raise ConfigurationError("need at least two services")

    flows: list[Flow] = []
    for window in range(activity_windows):
        base_time = window * window_length
        for service, targets in dependencies.items():
            for target in targets:
                if rng.random() < skip_probability:
                    continue
                flows.append(
                    Flow(
                        timestamp=base_time + float(rng.random()) * window_length,
                        source_service=service,
                        destination_service=target,
                    )
                )
        for _ in range(int(rng.poisson(noise_flows_per_window))):
            a, b = rng.choice(len(services), size=2, replace=False)
            flows.append(
                Flow(
                    timestamp=base_time + float(rng.random()) * window_length,
                    source_service=services[int(a)],
                    destination_service=services[int(b)],
                )
            )
    flows.sort(key=lambda f: f.timestamp)
    return flows


class NetworkDependencyMiner:
    """Infers service dependencies from a flow log (NSDMiner heuristic).

    Time is cut into fixed windows. A service is *active* in a window
    when it appears as a flow source; ``A -> B`` is reported when the
    fraction of A's active windows that also contain an ``A -> B`` flow
    reaches ``support_threshold``. Noise pairs co-occur in few windows
    and fall below the threshold; true dependencies appear in nearly
    every active window (they are only missing when skipped).
    """

    def __init__(
        self,
        window_length: float = 1.0,
        support_threshold: float = 0.6,
        min_active_windows: int = 5,
    ):
        if window_length <= 0:
            raise ConfigurationError("window length must be positive")
        if not 0 < support_threshold <= 1:
            raise ConfigurationError(
                f"support threshold must be in (0, 1], got {support_threshold}"
            )
        if min_active_windows < 1:
            raise ConfigurationError("min_active_windows must be >= 1")
        self.window_length = window_length
        self.support_threshold = support_threshold
        self.min_active_windows = min_active_windows

    def discover(self, flows: Iterable[Flow]) -> list[DiscoveredDependency]:
        """Mine the dependency edges present in a flow log."""
        active_windows: dict[str, set[int]] = defaultdict(set)
        pair_windows: dict[tuple[str, str], set[int]] = defaultdict(set)
        for flow in flows:
            window = int(flow.timestamp / self.window_length)
            active_windows[flow.source_service].add(window)
            pair_windows[(flow.source_service, flow.destination_service)].add(window)

        discovered = []
        for (source, target), windows in sorted(pair_windows.items()):
            source_activity = active_windows[source]
            if len(source_activity) < self.min_active_windows:
                continue
            support = len(windows & source_activity) / len(source_activity)
            if support >= self.support_threshold:
                discovered.append(
                    DiscoveredDependency(
                        source_service=source,
                        target_service=target,
                        support=support,
                    )
                )
        return discovered

    def discover_graph(self, flows: Iterable[Flow]) -> dict[str, list[str]]:
        """The discovered edges as an adjacency mapping."""
        graph: dict[str, list[str]] = defaultdict(list)
        for dependency in self.discover(flows):
            graph[dependency.source_service].append(dependency.target_service)
        return dict(graph)


def attach_discovered_dependencies(
    model: "DependencyModel",
    service_hosts: Mapping[str, str],
    discovered: Iterable[DiscoveredDependency],
    service_failure_probability: float = 0.005,
) -> list[str]:
    """Feed mined dependencies into the reliability model (§3.2.3).

    Each *target* service becomes a dependency component (its failure
    takes down whichever hosts run services depending on it), and each
    discovered edge attaches a fault-tree branch to the source service's
    host. ``service_hosts`` maps service names to the hosts running them.
    Returns the ids of the created service components.
    """
    if not 0 < service_failure_probability < 1:
        raise ConfigurationError(
            "service failure probability must be in (0, 1), got "
            f"{service_failure_probability}"
        )
    created: list[str] = []
    seen: set[str] = set()
    for dependency in discovered:
        source_host = service_hosts.get(dependency.source_service)
        if source_host is None:
            raise ConfigurationError(
                f"no host known for service {dependency.source_service!r}"
            )
        service_id = f"service/{dependency.target_service}"
        if service_id not in seen:
            model.add_dependency_component(
                Component(
                    component_id=service_id,
                    component_type=ComponentType.LIBRARY,
                    failure_probability=service_failure_probability,
                    attributes={"service": dependency.target_service},
                )
            )
            seen.add(service_id)
            created.append(service_id)
        model.attach_branch(source_host, basic(service_id))
    return created
