"""Synthetic dependency-inventory builders.

The paper acquires dependency information from cloud-management platforms
and tools such as HardwareLister, apt-rdepends and NSDMiner (§2.1). Those
feeds are proprietary, so this module builds the closest synthetic
equivalents, and in particular reproduces the evaluation's own setting
(§4.1): **5 power supplies per data center, assigned round-robin to every
switch and to the group of hosts under every edge switch, maximising power
diversity**.

Beyond the paper's evaluation setting, richer builders attach redundant
power pairs, redundant rack cooling, and per-host OS/library software
dependencies — yielding exactly the Fig. 5 tree shape — so the fault-tree
machinery is exercised with AND gates and deeper structures too.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.faults.component import Component, ComponentType
from repro.faults.cvss import SyntheticVulnerabilityDatabase
from repro.faults.dependencies import DependencyModel
from repro.faults.faulttree import and_gate, basic, or_gate
from repro.faults.probability import PAPER_DEFAULT_MODEL, NormalProbabilityModel
from repro.util.errors import ConfigurationError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (topology uses faults)
    from repro.topology.base import Topology
from repro.util.rng import make_rng


def validate_failure_probabilities(probabilities: Mapping[str, float]) -> None:
    """Reject malformed failure probabilities at the inventory boundary.

    Operator-supplied probability feeds (measured zone-root rates,
    bathtub-curve overrides, hand-edited what-if studies) are the one
    place garbage enters the fault model: a NaN silently poisons every
    sampled round it touches, and a negative or >1 value turns the
    Monte Carlo estimate into nonsense. Every problem is collected and
    raised as one field-level :class:`~repro.util.errors.ValidationError`
    (field = component id) instead of dying on the first bad entry.
    """
    errors: list[tuple[str, str]] = []
    for component_id in sorted(probabilities):
        raw = probabilities[component_id]
        try:
            value = float(raw)
        except (TypeError, ValueError):
            errors.append((component_id, f"failure probability {raw!r} is not a number"))
            continue
        if math.isnan(value):
            errors.append((component_id, "failure probability is NaN"))
        elif value < 0.0:
            errors.append((component_id, f"failure probability {value} is negative"))
        elif value > 1.0:
            errors.append((component_id, f"failure probability {value} exceeds 1"))
    if errors:
        raise ValidationError(errors)


def _make_dependency(
    model: DependencyModel,
    component_id: str,
    component_type: ComponentType,
    probability: float,
    **attributes,
) -> Component:
    component = Component(
        component_id=component_id,
        component_type=component_type,
        failure_probability=probability,
        attributes=attributes,
    )
    model.add_dependency_component(component)
    return component


def attach_power_supplies(
    model: DependencyModel,
    count: int = 5,
    probability_model: NormalProbabilityModel = PAPER_DEFAULT_MODEL,
    seed: int | np.random.Generator | None = None,
) -> list[str]:
    """Attach ``count`` shared power supplies round-robin (§4.1).

    Every switch gets one power supply, and the whole host group under each
    edge switch shares one power supply, both assigned round-robin to
    maximise power diversity. Returns the new power-supply ids.

    These supplies are deliberately *shared*: each one powers many
    elements, so its failure is a correlated-failure event.
    """
    if count < 1:
        raise ConfigurationError(f"need at least one power supply, got {count}")
    rng = make_rng(seed)
    topology = model.topology

    supply_ids = []
    for i in range(count):
        sid = f"power/{i}"
        _make_dependency(
            model,
            sid,
            ComponentType.POWER_SUPPLY,
            probability=probability_model.sample(rng),
            index=i,
        )
        supply_ids.append(sid)

    cursor = 0
    for switch_id in topology.switches:
        model.attach_branch(switch_id, basic(supply_ids[cursor % count]))
        cursor += 1
    for rack_id in topology.racks():
        supply = supply_ids[cursor % count]
        cursor += 1
        for host_id in topology.hosts_in_rack(rack_id):
            model.attach_branch(host_id, basic(supply))
    return supply_ids


def attach_redundant_power(
    model: DependencyModel,
    pairs: int = 5,
    probability_model: NormalProbabilityModel = PAPER_DEFAULT_MODEL,
    seed: int | np.random.Generator | None = None,
) -> list[tuple[str, str]]:
    """Attach redundant power-supply *pairs*: an element fails on power only
    if **both** supplies of its pair fail (the AND gate of Fig. 5).

    Pairs are assigned round-robin over switches and rack host-groups, like
    :func:`attach_power_supplies`. Returns the pair id tuples.
    """
    if pairs < 1:
        raise ConfigurationError(f"need at least one power pair, got {pairs}")
    rng = make_rng(seed)
    topology = model.topology

    pair_ids: list[tuple[str, str]] = []
    for i in range(pairs):
        ids = (f"power/{i}/a", f"power/{i}/b")
        for pid in ids:
            _make_dependency(
                model,
                pid,
                ComponentType.POWER_SUPPLY,
                probability=probability_model.sample(rng),
                pair=i,
            )
        pair_ids.append(ids)

    def power_branch(pair: tuple[str, str]):
        return and_gate(basic(pair[0]), basic(pair[1]), label="power fails")

    cursor = 0
    for switch_id in topology.switches:
        model.attach_branch(switch_id, power_branch(pair_ids[cursor % pairs]))
        cursor += 1
    for rack_id in topology.racks():
        pair = pair_ids[cursor % pairs]
        cursor += 1
        for host_id in topology.hosts_in_rack(rack_id):
            model.attach_branch(host_id, power_branch(pair))
    return pair_ids


def attach_rack_cooling(
    model: DependencyModel,
    redundancy: int = 2,
    probability_model: NormalProbabilityModel = PAPER_DEFAULT_MODEL,
    seed: int | np.random.Generator | None = None,
) -> dict[str, list[str]]:
    """Attach ``redundancy`` cooling units to every rack (Fig. 5).

    All hosts of a rack share that rack's cooling units; the rack's hosts
    fail on cooling only when *all* units fail (AND gate). Returns the
    cooling ids per rack.
    """
    if redundancy < 1:
        raise ConfigurationError(f"cooling redundancy must be >= 1, got {redundancy}")
    rng = make_rng(seed)
    topology = model.topology

    cooling_by_rack: dict[str, list[str]] = {}
    for rack_index, rack_id in enumerate(topology.racks()):
        unit_ids = []
        for unit in range(redundancy):
            cid = f"cooling/{rack_index}/{unit}"
            _make_dependency(
                model,
                cid,
                ComponentType.COOLING,
                probability=probability_model.sample(rng),
                rack=rack_id,
            )
            unit_ids.append(cid)
        cooling_by_rack[rack_id] = unit_ids
        if redundancy == 1:
            branch = basic(unit_ids[0])
        else:
            branch = and_gate(*[basic(u) for u in unit_ids], label="cooling fails")
        for host_id in topology.hosts_in_rack(rack_id):
            model.attach_branch(host_id, branch)
    return cooling_by_rack


def attach_host_software(
    model: DependencyModel,
    os_images: int = 3,
    shared_libraries: int = 4,
    vulnerability_db: SyntheticVulnerabilityDatabase | None = None,
    seed: int | np.random.Generator | None = None,
) -> dict[str, list[str]]:
    """Attach OS + shared-library software dependencies to every host.

    There are ``os_images`` distinct OS images and ``shared_libraries``
    distinct libraries in the fleet; each host runs one OS and one library
    (assigned round-robin), and fails if either fails (the OR software
    branch of Fig. 5). Software failure probabilities are estimated from
    synthetic CVSS data (§2.1). Returns the software ids per host.

    Because images and libraries are fleet-wide, they are shared
    dependencies: one buggy OS image can take down many hosts at once.
    """
    if min(os_images, shared_libraries) < 1:
        raise ConfigurationError("need at least one OS image and one library")
    rng = make_rng(seed)
    db = vulnerability_db or SyntheticVulnerabilityDatabase()
    topology = model.topology

    os_ids = []
    for i in range(os_images):
        cid = f"os/{i}"
        _make_dependency(
            model,
            cid,
            ComponentType.OPERATING_SYSTEM,
            probability=db.failure_probability_for(cid, rng),
            image=i,
        )
        os_ids.append(cid)
    lib_ids = []
    for i in range(shared_libraries):
        cid = f"lib/{i}"
        _make_dependency(
            model,
            cid,
            ComponentType.LIBRARY,
            probability=db.failure_probability_for(cid, rng),
            package=i,
        )
        lib_ids.append(cid)

    software_by_host: dict[str, list[str]] = {}
    for index, host_id in enumerate(topology.hosts):
        os_id = os_ids[index % os_images]
        lib_id = lib_ids[index % shared_libraries]
        branch = or_gate(basic(os_id), basic(lib_id), label="software fails")
        model.attach_branch(host_id, branch)
        software_by_host[host_id] = [os_id, lib_id]
    return software_by_host


def attach_zone_shared_roots(
    model: DependencyModel,
    probability_model: NormalProbabilityModel = PAPER_DEFAULT_MODEL,
    root_probabilities: Mapping[str, float] | None = None,
    seed: int | np.random.Generator | None = None,
) -> dict[str, list[str]]:
    """Attach per-zone shared roots so zone outages are correlated events.

    Every zone of a :class:`~repro.topology.zones.MultiZoneTopology` gets
    three shared dependencies — power feed, cooling plant and control
    plane — attached to **every** network element of the zone (hosts,
    switches, WAN routers). One root failing fails the whole zone in the
    same sampling round, which is exactly the correlated-failure
    structure the cross-zone placement constraints defend against.

    Each inter-zone WAN plane additionally gets a shared *conduit*
    dependency (the physical long-haul fiber) attached to the WAN
    routers at both ends: a conduit cut severs that plane's inter-zone
    path as one correlated event.

    ``root_probabilities`` optionally overrides sampled probabilities
    with operator-measured rates (keyed by root id); the mapping is
    validated with :func:`validate_failure_probabilities` before any
    component is built. Returns ``{zone: [root ids]}`` with conduit ids
    under the pseudo-zone key ``"wan"``.
    """
    topology = model.topology
    zone_names = getattr(topology, "zone_names", None)
    if not zone_names:
        raise ConfigurationError(
            f"topology {topology.name!r} has no zones; zone shared roots need a "
            "MultiZoneTopology"
        )
    if root_probabilities:
        validate_failure_probabilities(root_probabilities)
    overrides = dict(root_probabilities or {})
    rng = make_rng(seed)

    def probability_of(root_id: str) -> float:
        if root_id in overrides:
            return float(overrides[root_id])
        return probability_model.sample(rng)

    roots_by_zone: dict[str, list[str]] = {}
    for zone in zone_names:
        root_ids = []
        for kind, ctype in (
            ("power-feed", ComponentType.POWER_SUPPLY),
            ("cooling-plant", ComponentType.COOLING),
            ("control-plane", ComponentType.CONTROL_PLANE),
        ):
            rid = f"zone-root/{zone}/{kind}"
            _make_dependency(
                model,
                rid,
                ctype,
                probability=probability_of(rid),
                zone=zone,
                shared_root=True,
            )
            root_ids.append(rid)
        roots_by_zone[zone] = root_ids
        branch = or_gate(*[basic(rid) for rid in root_ids], label=f"{zone} roots fail")
        for element_id in topology.zone_elements(zone):
            model.attach_branch(element_id, branch)

    conduit_ids = []
    for i, zone_a in enumerate(zone_names):
        for zone_b in zone_names[i + 1 :]:
            for plane in range(getattr(topology, "wan_routers_per_zone", 1)):
                cid = f"wan-conduit/{zone_a}--{zone_b}/{plane}"
                _make_dependency(
                    model,
                    cid,
                    ComponentType.LINK,
                    probability=probability_of(cid),
                    zones=(zone_a, zone_b),
                    plane=plane,
                )
                conduit_ids.append(cid)
                branch = basic(cid)
                model.attach_branch(topology.wan_by_zone[zone_a][plane], branch)
                model.attach_branch(topology.wan_by_zone[zone_b][plane], branch)
    roots_by_zone["wan"] = conduit_ids
    return roots_by_zone


def zone_shared_root_ids(model: DependencyModel, zone: str) -> list[str]:
    """The shared-root dependency ids of one zone (power, cooling, control).

    The chaos harness uses this to take a whole zone down in one
    injection; see :class:`~repro.runtime.chaos.ZoneOutage`.
    """
    roots = [
        cid
        for cid, component in model.dependency_components.items()
        if component.attributes.get("shared_root")
        and component.attributes.get("zone") == zone
    ]
    if not roots:
        raise ConfigurationError(
            f"no shared roots found for zone {zone!r}; was the inventory built "
            "with attach_zone_shared_roots?"
        )
    return roots


def build_paper_inventory(
    topology: Topology,
    power_supplies: int = 5,
    seed: int | np.random.Generator | None = None,
) -> DependencyModel:
    """The evaluation inventory of §4.1: N shared power supplies, nothing else."""
    model = DependencyModel.empty(topology)
    attach_power_supplies(model, count=power_supplies, seed=seed)
    return model


def build_rich_inventory(
    topology: Topology,
    power_pairs: int = 5,
    cooling_redundancy: int = 2,
    os_images: int = 3,
    shared_libraries: int = 4,
    seed: int | np.random.Generator | None = None,
) -> DependencyModel:
    """A full Fig. 5-shaped inventory: redundant power, redundant cooling,
    and shared software, demonstrating AND/OR fault-tree structure."""
    rng = make_rng(seed)
    model = DependencyModel.empty(topology)
    attach_redundant_power(model, pairs=power_pairs, seed=rng)
    attach_rack_cooling(model, redundancy=cooling_redundancy, seed=rng)
    attach_host_software(
        model, os_images=os_images, shared_libraries=shared_libraries, seed=rng
    )
    return model


def build_zone_inventory(
    topology: Topology,
    power_supplies: int = 5,
    root_probabilities: Mapping[str, float] | None = None,
    seed: int | np.random.Generator | None = None,
) -> DependencyModel:
    """The multi-zone inventory: §4.1 power supplies plus zone shared roots.

    Round-robin power supplies within each zone's racks and switches (as
    in the paper's evaluation) layered with per-zone power feed / cooling
    plant / control plane and per-plane WAN conduits, so zone outages and
    conduit cuts are correlated events. The assembled model's complete
    probability map is re-validated as a final invariant check.
    """
    rng = make_rng(seed)
    model = DependencyModel.empty(topology)
    attach_power_supplies(model, count=power_supplies, seed=rng)
    attach_zone_shared_roots(model, root_probabilities=root_probabilities, seed=rng)
    validate_failure_probabilities(model.failure_probabilities())
    return model


def power_supplies_of_plan(
    model: DependencyModel, host_ids: Sequence[str]
) -> list[frozenset[str]]:
    """Per-host power-supply ids referenced by each host's fault tree.

    Used by the enhanced common-practice baseline, which picks the plan
    with the most diversified power supplies (§4.2.2).
    """
    result = []
    for host_id in host_ids:
        events = model.tree_for(host_id).basic_events()
        result.append(
            frozenset(
                cid
                for cid in events
                if cid in model.dependency_components
                and model.dependency_components[cid].component_type
                is ComponentType.POWER_SUPPLY
            )
        )
    return result
