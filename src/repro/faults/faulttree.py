"""Fault trees with AND / OR / k-of-n gates (§3.2.3, Fig. 5).

reCloud builds a fault tree for each host's and switch's dependencies:
the element fails if its own hardware fails OR any of its single points of
failure fail OR all members of a redundant group fail (AND gate). Trees of
different elements are implicitly connected whenever they reference the
same underlying component (e.g. a power supply shared by a whole row).

Evaluation is vectorised: basic-event states are boolean arrays over
sampling rounds (True = failed in that round), and gates combine them with
numpy boolean algebra, so one traversal evaluates every round at once. A
scalar convenience wrapper evaluates a single round from a set of failed
component ids.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import AbstractSet, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.util.errors import ConfigurationError


class GateKind(enum.Enum):
    """Logical gate kinds supported in fault trees."""

    OR = "or"  # fails if ANY child fails
    AND = "and"  # fails only if ALL children fail (redundant group)
    K_OF_N = "k_of_n"  # fails if at least k children fail


@dataclass(frozen=True, slots=True)
class BasicEvent:
    """A leaf of a fault tree: the failure of one underlying component."""

    component_id: str

    def __str__(self) -> str:
        return self.component_id


@dataclass(frozen=True, slots=True)
class Gate:
    """An internal fault-tree node combining children with a logical gate.

    ``threshold`` is only meaningful for ``K_OF_N`` gates, where the gate
    fires when at least ``threshold`` children have fired.
    """

    kind: GateKind
    children: tuple["FaultTreeNode", ...]
    threshold: int = 0
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.children:
            raise ConfigurationError("a gate must have at least one child")
        if self.kind is GateKind.K_OF_N:
            if not 1 <= self.threshold <= len(self.children):
                raise ConfigurationError(
                    f"k-of-n threshold {self.threshold} must be in "
                    f"[1, {len(self.children)}]"
                )

    def __str__(self) -> str:
        inner = ", ".join(str(c) for c in self.children)
        if self.kind is GateKind.K_OF_N:
            return f"{self.kind.value}({self.threshold}; {inner})"
        return f"{self.kind.value}({inner})"


FaultTreeNode = BasicEvent | Gate


def or_gate(*children: FaultTreeNode, label: str = "") -> Gate:
    """Gate that fires if any child fires (single points of failure)."""
    return Gate(GateKind.OR, tuple(children), label=label)


def and_gate(*children: FaultTreeNode, label: str = "") -> Gate:
    """Gate that fires only if every child fires (redundant group)."""
    return Gate(GateKind.AND, tuple(children), label=label)


def k_of_n_gate(threshold: int, *children: FaultTreeNode, label: str = "") -> Gate:
    """Gate that fires when at least ``threshold`` children fire."""
    return Gate(GateKind.K_OF_N, tuple(children), threshold=threshold, label=label)


def basic(component_id: str) -> BasicEvent:
    """Leaf referencing a component by id."""
    return BasicEvent(component_id)


@dataclass(frozen=True)
class FaultTree:
    """A complete fault tree for one network element.

    ``subject_id`` names the host/switch the tree belongs to; ``root`` is
    the top gate (typically an OR over the element's own hardware failure
    and its dependency branches, as in Fig. 5 of the paper).
    """

    subject_id: str
    root: FaultTreeNode

    def basic_events(self) -> frozenset[str]:
        """All component ids referenced by the tree's leaves."""
        return frozenset(event.component_id for event in iter_basic_events(self.root))

    def evaluate(self, failed_states: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorised evaluation over rounds.

        ``failed_states`` maps component id -> boolean array (True where the
        component is failed). Returns a boolean array of the same length:
        True in rounds where the subject fails.
        """
        return _evaluate_node(self.root, failed_states.__getitem__)

    def evaluate_round(self, failed_components: AbstractSet[str]) -> bool:
        """Scalar evaluation of a single round from a failed-component set.

        Pure set/bool recursion — no 1-element ndarrays per leaf. The
        exact-probability enumerator calls this once per state of up to
        ``2**20`` states, where the per-leaf array allocations used to
        dominate its runtime.
        """
        return _evaluate_node_scalar(self.root, failed_components)

    def depth(self) -> int:
        """Height of the tree (a lone basic event has depth 1)."""
        return _node_depth(self.root)

    def __str__(self) -> str:
        return f"FaultTree({self.subject_id}: {self.root})"


def iter_basic_events(node: FaultTreeNode) -> Iterator[BasicEvent]:
    """Yield every basic event in the subtree rooted at ``node``."""
    stack: list[FaultTreeNode] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, BasicEvent):
            yield current
        else:
            stack.extend(current.children)


def _node_depth(node: FaultTreeNode) -> int:
    if isinstance(node, BasicEvent):
        return 1
    return 1 + max(_node_depth(child) for child in node.children)


def _evaluate_node(
    node: FaultTreeNode, lookup: Callable[[str], np.ndarray]
) -> np.ndarray:
    if isinstance(node, BasicEvent):
        return np.asarray(lookup(node.component_id), dtype=bool)
    child_states = [_evaluate_node(child, lookup) for child in node.children]
    if node.kind is GateKind.OR:
        result = child_states[0].copy()
        for state in child_states[1:]:
            np.logical_or(result, state, out=result)
        return result
    if node.kind is GateKind.AND:
        result = child_states[0].copy()
        for state in child_states[1:]:
            np.logical_and(result, state, out=result)
        return result
    # K_OF_N: count firing children per round.
    counts = np.zeros_like(child_states[0], dtype=np.int32)
    for state in child_states:
        counts += state.astype(np.int32)
    return np.asarray(counts >= node.threshold)


def _evaluate_node_scalar(node: FaultTreeNode, failed: AbstractSet[str]) -> bool:
    if isinstance(node, BasicEvent):
        return node.component_id in failed
    if node.kind is GateKind.OR:
        return any(_evaluate_node_scalar(child, failed) for child in node.children)
    if node.kind is GateKind.AND:
        return all(_evaluate_node_scalar(child, failed) for child in node.children)
    # K_OF_N: stop counting as soon as the threshold is reached.
    fired = 0
    for child in node.children:
        if _evaluate_node_scalar(child, failed):
            fired += 1
            if fired >= node.threshold:
                return True
    return False


def trivial_tree(subject_id: str) -> FaultTree:
    """The degenerate tree used when an element has no known dependencies.

    The element fails exactly when its own component fails — this is the
    limited-dependency-information mode of §3.4.
    """
    return FaultTree(subject_id=subject_id, root=basic(subject_id))


def exact_failure_probability(
    tree: FaultTree, probabilities: Mapping[str, float]
) -> float:
    """Exact top-event probability by enumerating basic-event states.

    Exponential in the number of distinct basic events; intended for tests
    and micro-topologies only (the ground truth the samplers approximate).
    """
    events = sorted(tree.basic_events())
    if len(events) > 20:
        raise ConfigurationError(
            f"exact enumeration over {len(events)} events is intractable"
        )
    total = 0.0
    for mask in range(1 << len(events)):
        failed = {events[i] for i in range(len(events)) if mask >> i & 1}
        weight = 1.0
        for i, event in enumerate(events):
            p = probabilities[event]
            weight *= p if mask >> i & 1 else 1.0 - p
        if weight == 0.0:
            continue
        if tree.evaluate_round(failed):
            total += weight
    return total


def merge_shared_events(trees: Sequence[FaultTree]) -> frozenset[str]:
    """Component ids referenced by more than one tree (shared dependencies).

    These are exactly the components whose failure produces *correlated*
    failures across subjects — the situation reCloud is built to avoid.
    """
    seen: dict[str, int] = {}
    for tree in trees:
        for event in tree.basic_events():
            seen[event] = seen.get(event, 0) + 1
    return frozenset(cid for cid, count in seen.items() if count > 1)
