"""Estimating software failure probabilities from CVSS-style scores.

The paper notes (§2.1) that software components' failure probabilities are
hard to measure directly, and can instead be estimated from the
publicly-available CVSS scores of their known vulnerabilities, as done in
prior work [38, 58, 81]. This module implements that estimator: each
vulnerability's CVSS base score (0-10) is mapped to an exploitation/failure
likelihood, and the software package fails if any of its vulnerabilities is
triggered (independence across vulnerabilities).

It also ships a small synthetic vulnerability-database generator so the
estimator can be exercised without the (external) National Vulnerability
Database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.util.errors import ConfigurationError

#: CVSS v3 base-score severity bands.
SEVERITY_BANDS = (
    ("none", 0.0, 0.0),
    ("low", 0.1, 3.9),
    ("medium", 4.0, 6.9),
    ("high", 7.0, 8.9),
    ("critical", 9.0, 10.0),
)


@dataclass(frozen=True, slots=True)
class Vulnerability:
    """One CVSS-scored vulnerability of a software package."""

    identifier: str
    base_score: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_score <= 10.0:
            raise ConfigurationError(
                f"CVSS base score must be in [0, 10], got {self.base_score}"
            )

    @property
    def severity(self) -> str:
        """The CVSS severity band name for this score."""
        for name, low, high in SEVERITY_BANDS:
            if low <= self.base_score <= high:
                return name
        return "critical"


def vulnerability_trigger_probability(
    vulnerability: Vulnerability, scale: float = 0.002
) -> float:
    """Probability that one vulnerability causes a failure in a window.

    Follows the common CVSS-to-likelihood mapping used by attack-graph work
    [38, 58]: likelihood grows super-linearly with the base score,
    ``scale * (score / 10)^2``, so a critical 10.0 contributes ``scale``
    while a low 2.0 contributes only 4 % of it.
    """
    if scale <= 0 or scale >= 1:
        raise ConfigurationError(f"scale must be in (0, 1), got {scale}")
    return scale * (vulnerability.base_score / 10.0) ** 2


def software_failure_probability(
    vulnerabilities: Iterable[Vulnerability], scale: float = 0.002
) -> float:
    """Failure probability of a package from its vulnerability list.

    The package fails if at least one vulnerability triggers; triggers are
    treated as independent, so ``p = 1 - prod(1 - p_i)``.
    """
    survive = 1.0
    for vulnerability in vulnerabilities:
        survive *= 1.0 - vulnerability_trigger_probability(vulnerability, scale)
    return 1.0 - survive


@dataclass(frozen=True)
class SyntheticVulnerabilityDatabase:
    """Generates plausible per-package vulnerability lists.

    Substitutes for the NVD feed: the count of vulnerabilities per package
    is Poisson-distributed and base scores follow a right-skewed Beta
    distribution (most scores medium, few critical), matching the empirical
    shape of published CVSS data.
    """

    mean_vulnerabilities: float = 3.0
    score_alpha: float = 4.0
    score_beta: float = 3.0

    def vulnerabilities_for(
        self, package_name: str, rng: np.random.Generator
    ) -> list[Vulnerability]:
        """Draw a synthetic vulnerability list for ``package_name``."""
        count = int(rng.poisson(self.mean_vulnerabilities))
        scores = rng.beta(self.score_alpha, self.score_beta, size=count) * 10.0
        return [
            Vulnerability(identifier=f"CVE-SYN-{package_name}-{i}", base_score=float(s))
            for i, s in enumerate(np.round(scores, 1))
        ]

    def failure_probability_for(
        self, package_name: str, rng: np.random.Generator, scale: float = 0.002
    ) -> float:
        """Convenience: synthesise vulnerabilities and estimate p."""
        return software_failure_probability(
            self.vulnerabilities_for(package_name, rng), scale
        )


def rank_packages_by_risk(
    packages: Sequence[tuple[str, Sequence[Vulnerability]]], scale: float = 0.002
) -> list[tuple[str, float]]:
    """Rank software packages by estimated failure probability, worst first.

    Mirrors the service-provider ranking of Zhai et al. [81] that the paper
    cites as related work.
    """
    ranked = [
        (name, software_failure_probability(vulns, scale)) for name, vulns in packages
    ]
    ranked.sort(key=lambda item: item[1], reverse=True)
    return ranked
