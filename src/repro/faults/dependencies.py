"""Shared-dependency model: fault trees attached to network elements.

A :class:`DependencyModel` pairs a topology's network elements with the
fault trees describing everything else they depend on — power supplies,
cooling systems, operating systems, libraries, firmware (§3.2.3). Trees of
different elements are connected simply by referencing the same dependency
component id, which is exactly how correlated failures arise: when a shared
dependency fails, every element whose tree references it fails together.

The model is additive: builders in :mod:`repro.faults.inventory` attach one
kind of dependency at a time, and the assessment layer only ever asks two
questions — "which components must be sampled for these subjects?" and
"given sampled failure states, in which rounds does each subject fail?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.faults.component import Component
from repro.faults.faulttree import (
    FaultTree,
    FaultTreeNode,
    Gate,
    GateKind,
    basic,
    merge_shared_events,
    or_gate,
    trivial_tree,
)
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (topology uses faults)
    from repro.topology.base import Topology


@dataclass
class DependencyModel:
    """Dependency components and per-subject fault trees for one topology.

    Attributes:
        topology: The topology the model annotates.
        dependency_components: Dependency components by id (power supplies,
            cooling units, software, ...). Disjoint from the topology's own
            components.
        trees: Fault tree per subject (host/switch) id. Subjects without an
            entry implicitly use the trivial tree "subject fails iff its own
            component fails" (§3.4's limited-information behaviour).
    """

    topology: Topology
    dependency_components: dict[str, Component] = field(default_factory=dict)
    trees: dict[str, FaultTree] = field(default_factory=dict)
    #: Per-subject basic-event memo. Closure computation is on the search
    #: hot path (every candidate plan reads the events of ~dozens of
    #: subjects), so the per-subject event sets are cached and invalidated
    #: whenever a branch is attached to the subject's tree.
    _events_memo: dict[str, frozenset[str]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def empty(cls, topology: Topology) -> "DependencyModel":
        """A model with no dependency information at all (§3.4)."""
        return cls(topology=topology)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_dependency_component(self, component: Component) -> None:
        """Register a dependency component, rejecting id collisions."""
        cid = component.component_id
        if cid in self.topology:
            raise ConfigurationError(
                f"{cid!r} is already a network component of the topology"
            )
        existing = self.dependency_components.get(cid)
        if existing is not None and existing != component:
            raise ConfigurationError(f"conflicting definitions for dependency {cid!r}")
        self.dependency_components[cid] = component

    def attach_branch(self, subject_id: str, branch: FaultTreeNode) -> None:
        """OR a new dependency branch into ``subject_id``'s fault tree.

        The subject's tree always contains its own basic event (the element
        can fail by itself); each attached branch adds one more way for the
        subject to fail, mirroring the OR gate at the top of Fig. 5.
        """
        if subject_id not in self.topology:
            raise ConfigurationError(f"unknown subject {subject_id!r}")
        current = self.trees.get(subject_id)
        if current is None:
            root = or_gate(basic(subject_id), branch, label=f"{subject_id} fails")
        elif isinstance(current.root, Gate) and current.root.kind is GateKind.OR:
            children = tuple(current.root.children) + (branch,)
            root = Gate(GateKind.OR, children, label=f"{subject_id} fails")
        else:
            root = or_gate(current.root, branch, label=f"{subject_id} fails")
        self.trees[subject_id] = FaultTree(subject_id=subject_id, root=root)
        self._events_memo.pop(subject_id, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def tree_for(self, subject_id: str) -> FaultTree:
        """The subject's fault tree (trivial when nothing was attached)."""
        tree = self.trees.get(subject_id)
        if tree is not None:
            return tree
        if subject_id not in self.topology:
            raise ConfigurationError(f"unknown subject {subject_id!r}")
        return trivial_tree(subject_id)

    def component(self, component_id: str) -> Component:
        """Look up a component in the model or the underlying topology."""
        dependency = self.dependency_components.get(component_id)
        if dependency is not None:
            return dependency
        return self.topology.component(component_id)

    def failure_probabilities(self) -> dict[str, float]:
        """Probabilities for every network + dependency component."""
        probabilities = self.topology.failure_probabilities()
        for cid, component in self.dependency_components.items():
            probabilities[cid] = component.failure_probability
        return probabilities

    def override_probabilities(self, overrides: Mapping[str, float]) -> None:
        """Replace failure probabilities of dependency and/or network
        components (degradation events, chaos injections, what-ifs).

        Structure is untouched, so attached trees stay valid. Assessors
        cache probability maps: call ``refresh_probabilities()`` (and
        ``clear_caches()`` on incremental assessors) afterwards.
        """
        network = {}
        for cid, probability in overrides.items():
            existing = self.dependency_components.get(cid)
            if existing is not None:
                self.dependency_components[cid] = existing.with_probability(probability)
            else:
                network[cid] = probability
        if network:
            self.topology.override_probabilities(network)

    def basic_events_for(self, subject_ids: Iterable[str]) -> frozenset[str]:
        """Every component id the given subjects' trees can read.

        This is the sampling *closure* for those subjects: restricting
        failure-state generation to this set leaves the joint distribution
        over everything route-and-check reads unchanged, because components
        fail independently.
        """
        events: set[str] = set()
        for subject_id in subject_ids:
            events.update(self.basic_events_of(subject_id))
        return frozenset(events)

    def basic_events_of(self, subject_id: str) -> frozenset[str]:
        """Memoized basic events of one subject's tree (O(delta) closures).

        The memo entry is dropped when :meth:`attach_branch` modifies the
        subject's tree, so builders can keep adding dependencies safely.
        """
        events = self._events_memo.get(subject_id)
        if events is None:
            events = self.tree_for(subject_id).basic_events()
            self._events_memo[subject_id] = events
        return events

    def shared_dependencies(self) -> frozenset[str]:
        """Components referenced by the trees of 2+ subjects.

        Failures of these produce correlated subject failures.
        """
        return merge_shared_events(list(self.trees.values()))

    def subject_failures(
        self,
        subject_ids: Sequence[str],
        failed_states: Mapping[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """Vectorised per-round failure of each subject (fault-tree reasoning).

        This is the "reason and filter" step of §3.2.3: given sampled
        component failure states across rounds, decide per round whether
        each host/switch is effectively failed.
        """
        return {
            subject_id: self.tree_for(subject_id).evaluate(failed_states)
            for subject_id in subject_ids
        }

    def dependency_count(self) -> int:
        """Number of dependency components registered with the model."""
        return len(self.dependency_components)

    def __repr__(self) -> str:
        return (
            f"<DependencyModel on {self.topology.name!r}: "
            f"{len(self.dependency_components)} dependencies, "
            f"{len(self.trees)} annotated subjects>"
        )
