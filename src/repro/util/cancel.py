"""Cooperative cancellation tokens for deadline-bounded work.

An assessment served to a client must be boundable: the client sets a
deadline or cancels, and the work stops *between* natural units (sampling
chunks, dispatched portions, annealing moves) rather than being killed
mid-write or orphaned. A :class:`CancellationToken` is the one object
threaded through those loops; each loop polls ``token.cancelled`` (cheap:
one clock read plus an event check) or calls ``token.check()`` to raise
:class:`~repro.util.errors.OperationCancelled`.

Tokens compose: a child token created with ``token.child()`` fires when
its parent fires (service shutdown cancels every in-flight request) or
when its own deadline passes, whichever comes first. All state is
thread-safe — the service's HTTP thread cancels tokens that the scheduler
worker threads poll.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.util.errors import OperationCancelled

Clock = Callable[[], float]


class CancellationToken:
    """A thread-safe cancel flag with an optional monotonic deadline.

    ``deadline_seconds`` is relative to construction time; ``None`` means
    "no deadline" (the token only fires on an explicit :meth:`cancel` or
    through its parent). The token is one-shot: once fired it stays
    fired, and the first reason observed wins.
    """

    def __init__(
        self,
        deadline_seconds: float | None = None,
        clock: Clock = time.monotonic,
        parent: "CancellationToken | None" = None,
    ):
        if deadline_seconds is not None and deadline_seconds <= 0:
            # A non-positive deadline means "already expired": fire now so
            # the first poll observes it instead of dividing by zero later.
            deadline_seconds = 0.0
        self._clock = clock
        self._parent = parent
        self._event = threading.Event()
        self._reason: str | None = None
        self._deadline_at: float | None = None
        if deadline_seconds is not None:
            self._deadline_at = clock() + deadline_seconds

    # ------------------------------------------------------------------

    @classmethod
    def with_deadline(
        cls, seconds: float | None, clock: Clock = time.monotonic
    ) -> "CancellationToken":
        """A fresh token that fires ``seconds`` from now (or never)."""
        return cls(deadline_seconds=seconds, clock=clock)

    def child(self, deadline_seconds: float | None = None) -> "CancellationToken":
        """A token that fires with this one, or on its own deadline."""
        return CancellationToken(
            deadline_seconds=deadline_seconds, clock=self._clock, parent=self
        )

    # ------------------------------------------------------------------

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Fire the token explicitly. Idempotent; the first reason wins."""
        if not self._event.is_set():
            self._reason = self._reason or reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether the token has fired (explicitly, by deadline, or parent)."""
        if self._event.is_set():
            return True
        if self._deadline_at is not None and self._clock() >= self._deadline_at:
            self.cancel("deadline exceeded")
            return True
        if self._parent is not None and self._parent.cancelled:
            self.cancel(f"parent cancelled: {self._parent.reason}")
            return True
        return False

    @property
    def reason(self) -> str | None:
        """Why the token fired (``None`` while it has not)."""
        self.cancelled  # fold in deadline/parent state
        return self._reason

    def check(self) -> None:
        """Raise :class:`OperationCancelled` if the token has fired."""
        if self.cancelled:
            raise OperationCancelled(
                f"operation cancelled: {self._reason}", reason=self._reason
            )

    def remaining(self) -> float | None:
        """Seconds until the deadline (``None`` without one, >= 0 with)."""
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - self._clock())

    def __repr__(self) -> str:
        state = f"fired: {self._reason!r}" if self.cancelled else "live"
        if self._deadline_at is not None:
            state += f", {max(0.0, self._deadline_at - self._clock()):.3f}s left"
        return f"<CancellationToken {state}>"


#: A token that never fires — lets hot loops poll unconditionally instead
#: of branching on ``cancel is None`` at every check site.
NEVER = CancellationToken()
