"""Lightweight stage-timing and counter registry for the assessment pipeline.

The incremental engine's whole value proposition is "most of the work is
cached"; that claim has to be observable, not taken on faith. A
:class:`MetricsRegistry` collects named counters (cache hits/misses,
components sampled, plans assessed) and stage timers (closure, sampling,
fault trees, route-and-check, reduction) with near-zero overhead — two
``perf_counter`` reads per timed stage and a dict update per counter.

The registry is surfaced in two places:

* ``--profile`` on the CLI prints the formatted snapshot after a command;
* :class:`~repro.core.result.RuntimeMetadata` carries a flattened snapshot
  when profiling is enabled, so machine-readable artifacts include it.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping


class MetricsRegistry:
    """Named counters and cumulative stage timers.

    Counter names are free-form but the pipeline uses a ``stage/detail``
    convention (``plan_cache/hit``, ``sample/component_miss``, ...), which
    keeps the printed snapshot groupable.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._timer_seconds: dict[str, float] = {}
        self._timer_calls: dict[str, int] = {}
        self._gauges: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def incr(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the named counter (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a stage; cumulative across calls."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._timer_seconds[name] = self._timer_seconds.get(name, 0.0) + elapsed
            self._timer_calls[name] = self._timer_calls.get(name, 0) + 1

    def observe(self, name: str, seconds: float) -> None:
        """Record an externally measured duration under a timer name.

        For latencies the caller already has in hand (queue wait,
        request latency) where wrapping a ``timer()`` block is awkward.
        """
        self._timer_seconds[name] = self._timer_seconds.get(name, 0.0) + seconds
        self._timer_calls[name] = self._timer_calls.get(name, 0) + 1

    def set_gauge(self, name: str, value: float) -> None:
        """Set an instantaneous level (queue depth, in-flight requests).

        Unlike counters, gauges move both ways; the registry keeps the
        latest value only.
        """
        self._gauges[name] = float(value)

    def reset(self) -> None:
        """Clear every counter, timer and gauge."""
        self._counters.clear()
        self._timer_seconds.clear()
        self._timer_calls.clear()
        self._gauges.clear()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float:
        """Current value of a gauge (0 if never set)."""
        return self._gauges.get(name, 0.0)

    def timer_seconds(self, name: str) -> float:
        """Cumulative seconds recorded under a timer name."""
        return self._timer_seconds.get(name, 0.0)

    def hit_rate(self, cache: str) -> float:
        """Hit rate of a cache instrumented as ``<cache>/hit`` + ``<cache>/miss``."""
        hits = self.counter(f"{cache}/hit")
        misses = self.counter(f"{cache}/miss")
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Structured view: ``{"counters", "gauges", "timers"}`` sections."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "timers": {
                name: {
                    "seconds": seconds,
                    "calls": self._timer_calls.get(name, 0),
                }
                for name, seconds in self._timer_seconds.items()
            },
        }

    def flat(self) -> tuple[tuple[str, float], ...]:
        """Flattened, hashable snapshot for frozen result records."""
        items: list[tuple[str, float]] = []
        for name, value in sorted(self._counters.items()):
            items.append((f"counter/{name}", float(value)))
        for name, value in sorted(self._gauges.items()):
            items.append((f"gauge/{name}", float(value)))
        for name, seconds in sorted(self._timer_seconds.items()):
            items.append((f"timer/{name}/seconds", float(seconds)))
            items.append((f"timer/{name}/calls", float(self._timer_calls.get(name, 0))))
        return tuple(items)

    def format_table(self) -> str:
        """Human-readable snapshot for the CLI's ``--profile`` output."""
        lines = ["-- profile --"]
        if self._timer_seconds:
            lines.append(f"{'stage':<28} {'seconds':>10} {'calls':>8}")
            for name in sorted(self._timer_seconds):
                lines.append(
                    f"{name:<28} {self._timer_seconds[name]:>10.4f} "
                    f"{self._timer_calls.get(name, 0):>8}"
                )
        if self._counters:
            lines.append(f"{'counter':<28} {'value':>10}")
            for name in sorted(self._counters):
                value = self._counters[name]
                rendered = f"{value:g}"
                lines.append(f"{name:<28} {rendered:>10}")
        if self._gauges:
            lines.append(f"{'gauge':<28} {'value':>10}")
            for name in sorted(self._gauges):
                lines.append(f"{name:<28} {self._gauges[name]:>10g}")
        caches = sorted(
            {
                name.rsplit("/", 1)[0]
                for name in self._counters
                if name.endswith(("/hit", "/miss"))
            }
        )
        for cache in caches:
            lines.append(f"{cache + ' hit rate':<28} {self.hit_rate(cache):>10.1%}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry: {len(self._counters)} counters, "
            f"{len(self._timer_seconds)} timers>"
        )


def flat_to_nested(flat: Mapping[str, float] | tuple) -> dict[str, dict]:
    """Rebuild a structured snapshot from :meth:`MetricsRegistry.flat` output."""
    if not isinstance(flat, Mapping):
        flat = dict(flat)
    nested: dict[str, dict] = {"counters": {}, "gauges": {}, "timers": {}}
    for key, value in flat.items():
        if key.startswith("counter/"):
            nested["counters"][key[len("counter/"):]] = value
        elif key.startswith("gauge/"):
            nested["gauges"][key[len("gauge/"):]] = value
        elif key.startswith("timer/"):
            rest = key[len("timer/"):]
            name, _, field = rest.rpartition("/")
            nested["timers"].setdefault(name, {})[field] = value
    return nested
