"""Wall-clock helpers used by the annealing search and the benchmarks.

The search loop needs two things: elapsed time since the search started (to
drive the temperature schedule of Eq. 6 in the paper) and a deadline check
(the developer-specified ``T_max``). Both are provided here, with an
injectable clock so tests can drive time deterministically.
"""

from __future__ import annotations

import time
from typing import Callable

Clock = Callable[[], float]


class Stopwatch:
    """Measures elapsed wall-clock time from construction (or reset)."""

    def __init__(self, clock: Clock = time.monotonic):
        self._clock = clock
        self._start = clock()

    def reset(self) -> None:
        """Restart the stopwatch at zero."""
        self._start = self._clock()

    def elapsed(self) -> float:
        """Seconds elapsed since construction or the last reset."""
        return self._clock() - self._start


class Deadline:
    """A fixed time budget, e.g. the paper's maximum search time ``T_max``.

    ``elapsed_offset`` credits time already spent before this deadline was
    constructed — a resumed search continues its budget where the
    interrupted run left off instead of restarting the clock.
    """

    def __init__(
        self,
        budget_seconds: float,
        clock: Clock = time.monotonic,
        elapsed_offset: float = 0.0,
    ):
        if budget_seconds <= 0:
            raise ValueError(f"budget must be positive, got {budget_seconds}")
        if elapsed_offset < 0:
            raise ValueError(f"elapsed offset must be non-negative, got {elapsed_offset}")
        self.budget_seconds = float(budget_seconds)
        self.elapsed_offset = float(elapsed_offset)
        self._watch = Stopwatch(clock)

    def elapsed(self) -> float:
        """Seconds spent so far (including any credited offset)."""
        return self.elapsed_offset + self._watch.elapsed()

    def remaining(self) -> float:
        """Seconds left in the budget; never negative."""
        return max(0.0, self.budget_seconds - self.elapsed())

    def expired(self) -> bool:
        """True once the budget is exhausted."""
        return self.elapsed() >= self.budget_seconds

    def fraction_remaining(self) -> float:
        """The paper's annealing temperature t = (T_max - T_elapsed) / T_max.

        Clamped to [0, 1]; reaches 0 exactly when the deadline expires.
        """
        return max(0.0, 1.0 - self.elapsed() / self.budget_seconds)
