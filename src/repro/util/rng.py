"""Deterministic random-number-generator plumbing.

Every stochastic piece of the library (samplers, searchers, workload models,
synthetic inventories) takes an explicit ``numpy.random.Generator`` so that
experiments are reproducible end to end. These helpers centralise how
generators are created and how child generators are derived from a parent
without correlating their streams.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

RandomState = int | np.random.Generator | None


def make_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``seed`` may be ``None`` (OS entropy), an integer, or an existing
    generator (returned unchanged, so call sites can accept either form).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(parent: np.random.Generator, *key: int | str) -> np.random.Generator:
    """Derive an independent child generator from ``parent`` and a key.

    The key is hashed into the child's seed sequence, so deriving with the
    same key twice from generators in the same state yields identical
    streams, while different keys yield statistically independent streams.
    """
    material: list[int] = []
    for part in key:
        if isinstance(part, str):
            material.extend(part.encode("utf-8"))
        else:
            material.append(int(part) & 0xFFFFFFFF)
    # Advance the parent so successive derivations differ even with equal keys.
    material.append(int(parent.integers(0, 2**32)))
    return np.random.default_rng(np.random.SeedSequence(material))


def spawn_rngs(parent: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``parent`` into ``count`` independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = parent.integers(0, 2**63, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def choice_without_replacement(
    rng: np.random.Generator, items: Sequence, count: int
) -> list:
    """Choose ``count`` distinct items from ``items`` uniformly at random."""
    if count > len(items):
        raise ValueError(
            f"cannot choose {count} distinct items from a pool of {len(items)}"
        )
    indices = rng.choice(len(items), size=count, replace=False)
    return [items[int(i)] for i in indices]


def shuffled(rng: np.random.Generator, items: Iterable) -> list:
    """Return a new list with the items of ``items`` in random order."""
    result = list(items)
    rng.shuffle(result)
    return result
