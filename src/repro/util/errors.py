"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library signals with a single ``except`` clause while
still distinguishing configuration mistakes from runtime conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class ValidationError(ConfigurationError):
    """A request or config failed validation at an API boundary.

    Collects *every* field-level problem instead of dying on the first,
    so callers (and the service's error responses) can report the lot in
    one round trip. ``errors`` is a tuple of ``(field, message)`` pairs;
    subclassing :class:`ConfigurationError` keeps the existing
    ``except ConfigurationError`` call sites working.
    """

    def __init__(self, errors):
        self.errors = tuple(
            (str(field), str(message)) for field, message in errors
        )
        if not self.errors:
            raise ValueError("ValidationError needs at least one field error")
        summary = "; ".join(f"{field}: {message}" for field, message in self.errors)
        super().__init__(f"validation failed ({len(self.errors)} error(s)): {summary}")

    def fields(self) -> tuple:
        """The names of the offending fields, in report order."""
        return tuple(field for field, _ in self.errors)

    def as_dict(self) -> dict:
        """JSON-ready encoding for service error responses."""
        return {
            "error": "validation",
            "errors": [
                {"field": field, "message": message}
                for field, message in self.errors
            ],
        }


class OperationCancelled(ReproError):
    """Cooperative cancellation: a deadline passed or a client cancelled.

    Raised by the inner loops (sampling chunks, portion waits, annealing
    moves) when their :class:`~repro.util.cancel.CancellationToken` fires.
    Layers holding partial data catch it and degrade to an *anytime*
    result instead of propagating; it only escapes when there is nothing
    at all to report.
    """

    def __init__(self, message: str = "operation cancelled", reason: str | None = None):
        super().__init__(message)
        self.reason = reason or message


class AdmissionRejected(ReproError):
    """The assessment service shed this request at admission.

    The typed overload signal: the bounded queue was full (or the service
    was draining), so the request was rejected *fast* instead of queueing
    unboundedly. ``reason`` is ``"queue_full"``, ``"draining"`` or
    ``"stopped"``; ``queue_depth``/``capacity`` describe the queue at
    rejection time.
    """

    def __init__(self, message: str, reason: str = "queue_full",
                 queue_depth: int | None = None, capacity: int | None = None):
        super().__init__(message)
        self.reason = reason
        self.queue_depth = queue_depth
        self.capacity = capacity


class CircuitOpen(ReproError):
    """A circuit breaker refused the call because its circuit is open.

    Raised by :meth:`~repro.service.breaker.CircuitBreaker.before_call`
    when the protected backend is presumed down and no half-open probe is
    due; callers are expected to route to their fallback.
    """

    def __init__(self, message: str, retry_after_seconds: float | None = None):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class TopologyError(ReproError):
    """A topology is malformed or a query referenced an unknown element."""


class UnsatisfiableRequirements(ReproError):
    """The developer's reliability requirements cannot possibly be met.

    Raised eagerly when requirements are contradictory (for example a
    deployment of N instances onto fewer than N distinct hosts), as opposed
    to a search that merely timed out (see :class:`SearchBudgetExceeded`).
    """


class SearchBudgetExceeded(ReproError):
    """The search spent its time budget without meeting the requirements.

    Mirrors the paper's protocol: when no plan reaching ``R_desired`` is
    found within ``T_max``, the provider informs the developer that the
    requirements cannot currently be fulfilled. The best plan found so far
    is attached so callers can still inspect or use it.
    """

    def __init__(self, message: str, best_plan=None, best_score=None):
        super().__init__(message)
        self.best_plan = best_plan
        self.best_score = best_score


class WorkerFailure(ReproError):
    """A worker process crashed or raised while assessing a portion.

    Raised by the supervised runtime when a portion could not be completed
    even after retries and fallback. ``portion`` is the portion index,
    ``attempt`` the zero-based attempt that failed last, and ``kind`` one
    of ``"crash"``, ``"error"`` or ``"timeout"``.
    """

    kind = "error"

    def __init__(self, message: str, portion=None, attempt=None, failures=()):
        super().__init__(message)
        self.portion = portion
        self.attempt = attempt
        self.failures = tuple(failures)


class PortionTimeout(WorkerFailure):
    """A portion exceeded its per-portion timeout (a hung or late worker)."""

    kind = "timeout"

    def __init__(self, message: str, portion=None, attempt=None, timeout_seconds=None):
        super().__init__(message, portion=portion, attempt=attempt)
        self.timeout_seconds = timeout_seconds


class DegradedResult(ReproError):
    """Degraded execution could not produce any usable result.

    Raised in ``partial_ok`` mode when *every* portion was lost, so there
    are zero completed rounds to estimate from. The per-portion failure
    records are attached for diagnosis.
    """

    def __init__(self, message: str, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)
