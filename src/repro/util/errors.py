"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the library signals with a single ``except`` clause while
still distinguishing configuration mistakes from runtime conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class TopologyError(ReproError):
    """A topology is malformed or a query referenced an unknown element."""


class UnsatisfiableRequirements(ReproError):
    """The developer's reliability requirements cannot possibly be met.

    Raised eagerly when requirements are contradictory (for example a
    deployment of N instances onto fewer than N distinct hosts), as opposed
    to a search that merely timed out (see :class:`SearchBudgetExceeded`).
    """


class SearchBudgetExceeded(ReproError):
    """The search spent its time budget without meeting the requirements.

    Mirrors the paper's protocol: when no plan reaching ``R_desired`` is
    found within ``T_max``, the provider informs the developer that the
    requirements cannot currently be fulfilled. The best plan found so far
    is attached so callers can still inspect or use it.
    """

    def __init__(self, message: str, best_plan=None, best_score=None):
        super().__init__(message)
        self.best_plan = best_plan
        self.best_score = best_score


class WorkerFailure(ReproError):
    """A worker process crashed or raised while assessing a portion.

    Raised by the supervised runtime when a portion could not be completed
    even after retries and fallback. ``portion`` is the portion index,
    ``attempt`` the zero-based attempt that failed last, and ``kind`` one
    of ``"crash"``, ``"error"`` or ``"timeout"``.
    """

    kind = "error"

    def __init__(self, message: str, portion=None, attempt=None, failures=()):
        super().__init__(message)
        self.portion = portion
        self.attempt = attempt
        self.failures = tuple(failures)


class PortionTimeout(WorkerFailure):
    """A portion exceeded its per-portion timeout (a hung or late worker)."""

    kind = "timeout"

    def __init__(self, message: str, portion=None, attempt=None, timeout_seconds=None):
        super().__init__(message, portion=portion, attempt=attempt)
        self.timeout_seconds = timeout_seconds


class DegradedResult(ReproError):
    """Degraded execution could not produce any usable result.

    Raised in ``partial_ok`` mode when *every* portion was lost, so there
    are zero completed rounds to estimate from. The per-portion failure
    records are attached for diagnosis.
    """

    def __init__(self, message: str, failures=()):
        super().__init__(message)
        self.failures = tuple(failures)
