"""Shared utilities: error types, deterministic RNG management, timing."""

from repro.util.errors import (
    ConfigurationError,
    ReproError,
    SearchBudgetExceeded,
    TopologyError,
    UnsatisfiableRequirements,
)
from repro.util.rng import derive_rng, make_rng, spawn_rngs
from repro.util.timing import Deadline, Stopwatch

__all__ = [
    "ConfigurationError",
    "Deadline",
    "ReproError",
    "SearchBudgetExceeded",
    "Stopwatch",
    "TopologyError",
    "UnsatisfiableRequirements",
    "derive_rng",
    "make_rng",
    "spawn_rngs",
]
