"""Shared utilities: error types, deterministic RNG management, timing."""

from repro.util.errors import (
    ConfigurationError,
    DegradedResult,
    PortionTimeout,
    ReproError,
    SearchBudgetExceeded,
    TopologyError,
    UnsatisfiableRequirements,
    WorkerFailure,
)
from repro.util.rng import derive_rng, make_rng, spawn_rngs
from repro.util.timing import Deadline, Stopwatch

__all__ = [
    "ConfigurationError",
    "Deadline",
    "DegradedResult",
    "PortionTimeout",
    "ReproError",
    "SearchBudgetExceeded",
    "Stopwatch",
    "TopologyError",
    "UnsatisfiableRequirements",
    "WorkerFailure",
    "derive_rng",
    "make_rng",
    "spawn_rngs",
]
