"""Vectorised up-down route-and-check for fat-trees.

Exploits the fat-tree wiring to evaluate reachability for all sampling
rounds at once with boolean algebra instead of per-round graph traversal —
this is what makes reCloud's 10^4-round assessments take milliseconds.

Routing semantics are the fat-tree routing protocol's valley-free paths:

* **external -> host**: border(g) -> core(g, j) -> agg(pod, g) ->
  edge -> host, for some group ``g`` and core index ``j``.
* **host <-> host**: same edge switch; or a shared aggregation switch when
  the hosts share a pod; or agg(podA, g) -> core(g, j) -> agg(podB, g)
  across pods. (A core detour inside one pod adds nothing: core group ``g``
  attaches to exactly one aggregation switch per pod.)

Every formula below ANDs the alive vectors of the elements and links on a
path segment and ORs over the alternative segments. ``None`` masks denote
"always alive" (elements that never fail in the batch), so fully reliable
links cost nothing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.faults.component import link_id
from repro.routing.base import (
    ReachabilityEngine,
    RoundStates,
    all_alive,
    any_path,
)
from repro.topology.fattree import FatTreeTopology
from repro.util.errors import TopologyError


class FatTreeReachabilityEngine(ReachabilityEngine):
    """Up-down reachability over a :class:`FatTreeTopology`."""

    supports_packed = True

    topology: FatTreeTopology

    def __init__(self, topology: FatTreeTopology):
        if not isinstance(topology, FatTreeTopology):
            raise TopologyError("FatTreeReachabilityEngine requires a FatTreeTopology")
        super().__init__(topology)

    # ------------------------------------------------------------------
    # Cached path-segment vectors (one cache per RoundStates object)
    # ------------------------------------------------------------------

    def _cache(self, states: RoundStates) -> dict:
        cache = getattr(states, "_fattree_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(states, "_fattree_cache", cache)
        return cache

    def _external_core(self, states: RoundStates, group: int, j: int):
        """border(g) -> core(g, j) segment: both alive + the link between."""
        cache = self._cache(states)
        key = ("ext_core", group, j)
        if key not in cache:
            topo = self.topology
            border = topo.border_switch_of_group(group)
            core = topo.core_ids[(group, j)]
            cache[key] = all_alive(states, (border, core, link_id(border, core)))
        return cache[key]

    def _agg_external(self, states: RoundStates, pod: int, group: int):
        """agg(pod, g) alive with an alive route up to an external core."""
        cache = self._cache(states)
        key = ("agg_ext", pod, group)
        if key not in cache:
            topo = self.topology
            agg = topo.agg_ids[(pod, group)]
            paths = []
            for j in range(topo.radix):
                core = topo.core_ids[(group, j)]
                uplink = all_alive(states, (link_id(agg, core),))
                segment = self._combine(self._external_core(states, group, j), uplink)
                paths.append(segment)
            via_core = any_path(paths, states)
            cache[key] = self._combine(all_alive(states, (agg,)), via_core)
        return cache[key]

    def _edge_external(self, states: RoundStates, edge: str):
        """edge switch alive with an alive route to an external core."""
        cache = self._cache(states)
        key = ("edge_ext", edge)
        if key not in cache:
            topo = self.topology
            pod = topo.edge_pod[edge]
            paths = []
            for group in range(topo.radix):
                agg = topo.agg_ids[(pod, group)]
                up = all_alive(states, (link_id(edge, agg),))
                paths.append(self._combine(self._agg_external(states, pod, group), up))
            via_agg = any_path(paths, states)
            cache[key] = self._combine(all_alive(states, (edge,)), via_agg)
        return cache[key]

    @staticmethod
    def _combine(*masks):
        """AND possibly-None alive masks (None = always alive).

        Bitwise so the same formula runs on dense boolean vectors and on
        the kernel's packed ``uint8`` rows. The result may alias the
        single non-None input, so combined masks are read-only by
        convention (every combiner here copies-on-write the same way).
        """
        result = None
        owned = False
        for mask in masks:
            if mask is None:
                continue
            if result is None:
                result = mask
            elif owned:
                np.bitwise_and(result, mask, out=result)
            else:
                result = np.bitwise_and(result, mask)
                owned = True
        return result

    # ------------------------------------------------------------------
    # Matrix-form external scaffolding (packed states only)
    #
    # The scalar helpers above issue one numpy call per path segment —
    # hundreds of sub-microsecond bitwise ops whose *call overhead*
    # dominates on packed rows (a k=4 fabric's row is ~1 KB). For packed
    # states the whole external scaffold — every border->core segment,
    # every aggregation switch's route up, every edge switch's external
    # row — is evaluated in one shot: the fabric's element ids are laid
    # out once per engine as contiguous slices of a single ordered list,
    # each assessment fills one (elements x width) alive matrix from the
    # failed-row dict, and a handful of broadcast AND / OR-reduce calls
    # compute all edges' rows together. Identical boolean algebra,
    # identical bits (AND/OR are commutative and associative per bit);
    # always-alive (absent) elements enter as all-ones rows, which AND/OR
    # treat exactly as the scalar path treats None.
    # ------------------------------------------------------------------

    def _scaffold_layout(self):
        """Fixed element-id layout of the external-route scaffold.

        Built once per engine: one ordered id tuple whose contiguous
        slices are the core switches, border->core links, border
        switches, agg->core uplinks, aggregation switches, edge->agg
        uplinks, and edge switches — in loop order matching the scalar
        helpers so reshapes recover the (pod, group, j) structure.
        """
        layout = getattr(self, "_scaffold", None)
        if layout is None:
            topo = self.topology
            radix = topo.radix
            pods = topo.num_pods
            edges = list(topo.edge_pod)
            groups = range(radix)
            ids: list[str] = []

            def span(items) -> slice:
                start = len(ids)
                ids.extend(items)
                return slice(start, len(ids))

            cores = span(
                topo.core_ids[(g, j)] for g in groups for j in range(radix)
            )
            core_links = span(
                link_id(topo.border_switch_of_group(g), topo.core_ids[(g, j)])
                for g in groups
                for j in range(radix)
            )
            borders = span(topo.border_switch_of_group(g) for g in groups)
            uplinks = span(
                link_id(topo.agg_ids[(pod, g)], topo.core_ids[(g, j)])
                for pod in range(pods)
                for g in groups
                for j in range(radix)
            )
            aggs = span(
                topo.agg_ids[(pod, g)] for pod in range(pods) for g in groups
            )
            edge_uplinks = span(
                link_id(edge, topo.agg_ids[(topo.edge_pod[edge], g)])
                for edge in edges
                for g in groups
            )
            edge_span = span(edges)
            layout = (
                tuple(ids),
                cores,
                core_links,
                borders,
                uplinks,
                aggs,
                edge_uplinks,
                edge_span,
                np.array([topo.edge_pod[e] for e in edges], dtype=np.intp),
                {edge: i for i, edge in enumerate(edges)},
            )
            self._scaffold = layout
        return layout

    def _edge_ext_matrix(self, states: RoundStates):
        """All edge switches' packed external rows, plus the row index.

        Returns ``(matrix, edge_index)`` where ``matrix[edge_index[e]]``
        is edge ``e``'s "alive with an alive route to an external core"
        row. Edges outside the sampled closure read all-alive rows for
        their unsampled dependencies; their rows are never consulted.

        The incremental assessor reuses one states object whose failed
        dict only ever *gains* entries (existing rows are never
        rewritten), so the dict's size doubles as a version counter: the
        matrix is recomputed whenever the dict has grown since it was
        built, which is exactly when a later plan's closure may have
        registered scaffold elements this matrix read as always-alive.
        """
        cache = self._cache(states)
        entry = cache.get("edge_ext_matrix")
        if entry is not None and entry[2] != len(states.failed):
            entry = None
        if entry is None:
            topo = self.topology
            radix, pods = topo.radix, topo.num_pods
            (
                ids,
                cores,
                core_links,
                borders,
                uplinks,
                aggs,
                edge_uplinks,
                edge_span,
                pod_of_edge,
                edge_index,
            ) = self._scaffold_layout()
            width = states.width
            alive = np.zeros((len(ids), width), dtype=np.uint8)
            failed_get = states.failed.get
            for i, cid in enumerate(ids):
                row = failed_get(cid)
                if row is not None:
                    alive[i] = row
            np.bitwise_not(alive, out=alive)

            # border(g) -> core(g, j) segments, shaped (group, j, width).
            ext_core = alive[cores] & alive[core_links]
            ext_core = ext_core.reshape(radix, radix, width)
            ext_core &= alive[borders][:, None, :]
            # agg(pod, g) alive with a route up: OR over core index j.
            segments = alive[uplinks].reshape(pods, radix * radix, width)
            segments &= ext_core.reshape(1, radix * radix, width)
            agg_ext = np.bitwise_or.reduce(
                segments.reshape(pods, radix, radix, width), axis=2
            )
            agg_ext &= alive[aggs].reshape(pods, radix, width)
            # edge alive with a route up: OR over aggregation group g.
            n_edges = len(pod_of_edge)
            segments = alive[edge_uplinks].reshape(n_edges, radix, width)
            segments &= agg_ext[pod_of_edge]
            matrix = np.bitwise_or.reduce(segments, axis=1)
            matrix &= alive[edge_span]
            entry = (matrix, edge_index, len(states.failed))
            cache["edge_ext_matrix"] = entry
        return entry

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------

    def relevant_elements(self, hosts: Sequence[str]) -> set[str]:
        topo = self.topology
        elements: set[str] = set()
        pods: set[int] = set()
        for host in hosts:
            edge = topo.edge_switch_of(host)
            elements.update((host, edge, link_id(host, edge)))
            pods.add(topo.edge_pod[edge])
        edges_in_play = {topo.edge_switch_of(h) for h in hosts}
        for pod in pods:
            for group in range(topo.radix):
                agg = topo.agg_ids[(pod, group)]
                elements.add(agg)
                for edge in edges_in_play:
                    if topo.edge_pod[edge] == pod:
                        elements.add(link_id(edge, agg))
                for j in range(topo.radix):
                    elements.add(link_id(agg, topo.core_ids[(group, j)]))
        for group in range(topo.radix):
            border = topo.border_switch_of_group(group)
            elements.add(border)
            for j in range(topo.radix):
                core = topo.core_ids[(group, j)]
                elements.add(core)
                elements.add(link_id(border, core))
        return elements

    def external_reachable(
        self, states: RoundStates, hosts: Sequence[str]
    ) -> dict[str, np.ndarray]:
        topo = self.topology
        result = {}
        if states.packed:
            edge_ext, edge_index, _ = self._edge_ext_matrix(states)
            n, width = len(hosts), states.width
            stack = np.zeros((2 * n, width), dtype=np.uint8)
            eidx = np.empty(n, dtype=np.intp)
            failed_get = states.failed.get
            for i, host in enumerate(hosts):
                edge = topo.edge_switch_of(host)
                eidx[i] = edge_index[edge]
                row = failed_get(host)
                if row is not None:
                    stack[i] = row
                row = failed_get(link_id(host, edge))
                if row is not None:
                    stack[n + i] = row
            np.bitwise_not(stack, out=stack)
            matrix = stack[:n] & stack[n:]
            matrix &= edge_ext[eidx]
            return dict(zip(hosts, matrix))
        for host in hosts:
            edge = topo.edge_switch_of(host)
            mask = self._combine(
                all_alive(states, (host, link_id(host, edge))),
                self._edge_external(states, edge),
            )
            result[host] = states.materialize(mask)
        return result

    def pairwise_reachable(
        self, states: RoundStates, pairs: Sequence[tuple[str, str]]
    ) -> dict[tuple[str, str], np.ndarray]:
        result = {}
        for a, b in pairs:
            result[(a, b)] = states.materialize(self._pair_mask(states, a, b))
        return result

    def _pair_mask(self, states: RoundStates, a: str, b: str):
        topo = self.topology
        if a == b:
            return self._combine(all_alive(states, (a,)))

        edge_a = topo.edge_switch_of(a)
        edge_b = topo.edge_switch_of(b)
        endpoints = self._combine(
            all_alive(states, (a, b, link_id(a, edge_a), link_id(b, edge_b), edge_a)),
            all_alive(states, (edge_b,)) if edge_b != edge_a else None,
        )

        if edge_a == edge_b:
            return endpoints

        pod_a = topo.edge_pod[edge_a]
        pod_b = topo.edge_pod[edge_b]
        if pod_a == pod_b:
            # Intra-pod: any shared aggregation switch with both downlinks.
            paths = []
            for group in range(topo.radix):
                agg = topo.agg_ids[(pod_a, group)]
                paths.append(
                    self._combine(
                        all_alive(
                            states, (agg, link_id(edge_a, agg), link_id(edge_b, agg))
                        )
                    )
                )
            return self._combine(endpoints, any_path(paths, states))

        # Inter-pod: up through group g on both sides, across any core j.
        paths = []
        for group in range(topo.radix):
            agg_a = topo.agg_ids[(pod_a, group)]
            agg_b = topo.agg_ids[(pod_b, group)]
            rim = self._combine(
                all_alive(
                    states,
                    (agg_a, agg_b, link_id(edge_a, agg_a), link_id(edge_b, agg_b)),
                )
            )
            core_paths = []
            for j in range(topo.radix):
                core = topo.core_ids[(group, j)]
                core_paths.append(
                    self._combine(
                        all_alive(
                            states, (core, link_id(agg_a, core), link_id(agg_b, core))
                        )
                    )
                )
            paths.append(self._combine(rim, any_path(core_paths, states)))
        return self._combine(endpoints, any_path(paths, states))
