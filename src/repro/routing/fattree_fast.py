"""Vectorised up-down route-and-check for fat-trees.

Exploits the fat-tree wiring to evaluate reachability for all sampling
rounds at once with boolean algebra instead of per-round graph traversal —
this is what makes reCloud's 10^4-round assessments take milliseconds.

Routing semantics are the fat-tree routing protocol's valley-free paths:

* **external -> host**: border(g) -> core(g, j) -> agg(pod, g) ->
  edge -> host, for some group ``g`` and core index ``j``.
* **host <-> host**: same edge switch; or a shared aggregation switch when
  the hosts share a pod; or agg(podA, g) -> core(g, j) -> agg(podB, g)
  across pods. (A core detour inside one pod adds nothing: core group ``g``
  attaches to exactly one aggregation switch per pod.)

Every formula below ANDs the alive vectors of the elements and links on a
path segment and ORs over the alternative segments. ``None`` masks denote
"always alive" (elements that never fail in the batch), so fully reliable
links cost nothing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.faults.component import link_id
from repro.routing.base import (
    ReachabilityEngine,
    RoundStates,
    all_alive,
    any_path,
    materialize,
)
from repro.topology.fattree import FatTreeTopology
from repro.util.errors import TopologyError


class FatTreeReachabilityEngine(ReachabilityEngine):
    """Up-down reachability over a :class:`FatTreeTopology`."""

    topology: FatTreeTopology

    def __init__(self, topology: FatTreeTopology):
        if not isinstance(topology, FatTreeTopology):
            raise TopologyError("FatTreeReachabilityEngine requires a FatTreeTopology")
        super().__init__(topology)

    # ------------------------------------------------------------------
    # Cached path-segment vectors (one cache per RoundStates object)
    # ------------------------------------------------------------------

    def _cache(self, states: RoundStates) -> dict:
        cache = getattr(states, "_fattree_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(states, "_fattree_cache", cache)
        return cache

    def _external_core(self, states: RoundStates, group: int, j: int):
        """border(g) -> core(g, j) segment: both alive + the link between."""
        cache = self._cache(states)
        key = ("ext_core", group, j)
        if key not in cache:
            topo = self.topology
            border = topo.border_switch_of_group(group)
            core = topo.core_ids[(group, j)]
            cache[key] = all_alive(states, (border, core, link_id(border, core)))
        return cache[key]

    def _agg_external(self, states: RoundStates, pod: int, group: int):
        """agg(pod, g) alive with an alive route up to an external core."""
        cache = self._cache(states)
        key = ("agg_ext", pod, group)
        if key not in cache:
            topo = self.topology
            agg = topo.agg_ids[(pod, group)]
            paths = []
            for j in range(topo.radix):
                core = topo.core_ids[(group, j)]
                uplink = all_alive(states, (link_id(agg, core),))
                segment = self._combine(self._external_core(states, group, j), uplink)
                paths.append(segment)
            via_core = any_path(paths, states.rounds)
            cache[key] = self._combine(all_alive(states, (agg,)), via_core)
        return cache[key]

    def _edge_external(self, states: RoundStates, edge: str):
        """edge switch alive with an alive route to an external core."""
        cache = self._cache(states)
        key = ("edge_ext", edge)
        if key not in cache:
            topo = self.topology
            pod = topo.edge_pod[edge]
            paths = []
            for group in range(topo.radix):
                agg = topo.agg_ids[(pod, group)]
                up = all_alive(states, (link_id(edge, agg),))
                paths.append(self._combine(self._agg_external(states, pod, group), up))
            via_agg = any_path(paths, states.rounds)
            cache[key] = self._combine(all_alive(states, (edge,)), via_agg)
        return cache[key]

    @staticmethod
    def _combine(*masks):
        """AND possibly-None alive masks (None = always alive)."""
        result = None
        for mask in masks:
            if mask is None:
                continue
            if result is None:
                result = mask.copy()
            else:
                np.logical_and(result, mask, out=result)
        return result

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------

    def relevant_elements(self, hosts: Sequence[str]) -> set[str]:
        topo = self.topology
        elements: set[str] = set()
        pods: set[int] = set()
        for host in hosts:
            edge = topo.edge_switch_of(host)
            elements.update((host, edge, link_id(host, edge)))
            pods.add(topo.edge_pod[edge])
        edges_in_play = {topo.edge_switch_of(h) for h in hosts}
        for pod in pods:
            for group in range(topo.radix):
                agg = topo.agg_ids[(pod, group)]
                elements.add(agg)
                for edge in edges_in_play:
                    if topo.edge_pod[edge] == pod:
                        elements.add(link_id(edge, agg))
                for j in range(topo.radix):
                    elements.add(link_id(agg, topo.core_ids[(group, j)]))
        for group in range(topo.radix):
            border = topo.border_switch_of_group(group)
            elements.add(border)
            for j in range(topo.radix):
                core = topo.core_ids[(group, j)]
                elements.add(core)
                elements.add(link_id(border, core))
        return elements

    def external_reachable(
        self, states: RoundStates, hosts: Sequence[str]
    ) -> dict[str, np.ndarray]:
        topo = self.topology
        result = {}
        for host in hosts:
            edge = topo.edge_switch_of(host)
            mask = self._combine(
                all_alive(states, (host, link_id(host, edge))),
                self._edge_external(states, edge),
            )
            result[host] = materialize(mask, states.rounds)
        return result

    def pairwise_reachable(
        self, states: RoundStates, pairs: Sequence[tuple[str, str]]
    ) -> dict[tuple[str, str], np.ndarray]:
        result = {}
        for a, b in pairs:
            result[(a, b)] = materialize(self._pair_mask(states, a, b), states.rounds)
        return result

    def _pair_mask(self, states: RoundStates, a: str, b: str):
        topo = self.topology
        if a == b:
            return self._combine(all_alive(states, (a,)))

        edge_a = topo.edge_switch_of(a)
        edge_b = topo.edge_switch_of(b)
        endpoints = self._combine(
            all_alive(states, (a, b, link_id(a, edge_a), link_id(b, edge_b), edge_a)),
            all_alive(states, (edge_b,)) if edge_b != edge_a else None,
        )

        if edge_a == edge_b:
            return endpoints

        pod_a = topo.edge_pod[edge_a]
        pod_b = topo.edge_pod[edge_b]
        if pod_a == pod_b:
            # Intra-pod: any shared aggregation switch with both downlinks.
            paths = []
            for group in range(topo.radix):
                agg = topo.agg_ids[(pod_a, group)]
                paths.append(
                    self._combine(
                        all_alive(
                            states, (agg, link_id(edge_a, agg), link_id(edge_b, agg))
                        )
                    )
                )
            return self._combine(endpoints, any_path(paths, states.rounds))

        # Inter-pod: up through group g on both sides, across any core j.
        paths = []
        for group in range(topo.radix):
            agg_a = topo.agg_ids[(pod_a, group)]
            agg_b = topo.agg_ids[(pod_b, group)]
            rim = self._combine(
                all_alive(
                    states,
                    (agg_a, agg_b, link_id(edge_a, agg_a), link_id(edge_b, agg_b)),
                )
            )
            core_paths = []
            for j in range(topo.radix):
                core = topo.core_ids[(group, j)]
                core_paths.append(
                    self._combine(
                        all_alive(
                            states, (core, link_id(agg_a, core), link_id(agg_b, core))
                        )
                    )
                )
            paths.append(self._combine(rim, any_path(core_paths, states.rounds)))
        return self._combine(endpoints, any_path(paths, states.rounds))
