"""Generic per-round route-and-check for arbitrary topologies.

Works on any :class:`~repro.topology.base.Topology` by examining the alive
subgraph round by round. Reachability here means graph connectivity of the
alive subgraph — the weakest assumption about the architecture's routing
protocol (any protocol can at best use the alive subgraph). Architectures
whose protocols forbid some physical paths (e.g. valley routing in a
fat-tree) should use their specific engine; this one is the universal
fallback and the reference implementation the fast engines are validated
against on architectures where the two semantics coincide.

Two key optimisations keep the per-round loop tolerable:

* rounds in which no relevant element fails are resolved in bulk (every
  target is reachable unless isolated in the intact topology), and
* connectivity is computed once per distinct failure pattern with a single
  union-find pass over the alive edges.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.faults.component import ComponentType
from repro.routing.base import ReachabilityEngine, RoundStates
from repro.topology.base import Topology


class _UnionFind:
    """Minimal union-find over dense integer ids (path halving + size)."""

    def __init__(self, size: int):
        self.parent = list(range(size))
        self.size = [1] * size

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)


class GenericReachabilityEngine(ReachabilityEngine):
    """Round-by-round union-find connectivity on the alive subgraph."""

    def __init__(self, topology: Topology):
        super().__init__(topology)
        self._index = {node: i for i, node in enumerate(topology.graph.nodes)}
        self._edges = [
            (self._index[a], self._index[b], data["component_id"], a, b)
            for a, b, data in topology.graph.edges(data=True)
        ]
        self._border_indices = [self._index[b] for b in topology.border_switches]
        self._intact = self._intact_union_find()

    def _intact_union_find(self) -> _UnionFind:
        """Connectivity of the fully-alive topology (the no-failure baseline)."""
        uf = _UnionFind(len(self._index))
        for ia, ib, _link_cid, _a, _b in self._edges:
            uf.union(ia, ib)
        return uf

    # ------------------------------------------------------------------

    def _relevant_ids(self) -> list[str]:
        """Every element whose failure can change connectivity."""
        ids = list(self._index)
        ids.extend(edge[2] for edge in self._edges)
        return ids

    def relevant_elements(self, hosts) -> set[str]:
        # Without structural knowledge, any element may sit on some path.
        return set(self._relevant_ids())

    def _components_for_round(self, states: RoundStates, round_index: int) -> _UnionFind:
        """Union-find of the alive subgraph in one round."""
        uf = _UnionFind(len(self._index))
        for ia, ib, link_cid, a, b in self._edges:
            if states.failed_in_round(link_cid, round_index):
                continue
            if states.failed_in_round(a, round_index) or states.failed_in_round(
                b, round_index
            ):
                continue
            uf.union(ia, ib)
        return uf

    def external_reachable(
        self, states: RoundStates, hosts: Sequence[str]
    ) -> dict[str, np.ndarray]:
        rounds = states.rounds
        # Rounds without failures fall back to intact-topology connectivity
        # (all-reachable for any sane topology, but not assumed).
        result = {
            host: np.full(
                rounds,
                any(
                    self._intact.connected(self._index[host], ib)
                    for ib in self._border_indices
                ),
                dtype=bool,
            )
            for host in hosts
        }

        failure_rounds = states.rounds_with_failures(self._relevant_ids())
        for round_index in failure_rounds:
            uf = self._components_for_round(states, round_index)
            alive_borders = [
                ib
                for b, ib in zip(self.topology.border_switches, self._border_indices)
                if not states.failed_in_round(b, round_index)
            ]
            for host in hosts:
                reachable = False
                if not states.failed_in_round(host, round_index):
                    host_index = self._index[host]
                    reachable = any(
                        uf.connected(host_index, ib) for ib in alive_borders
                    )
                result[host][round_index] = reachable
        return result

    def pairwise_reachable(
        self, states: RoundStates, pairs: Sequence[tuple[str, str]]
    ) -> dict[tuple[str, str], np.ndarray]:
        rounds = states.rounds
        result = {
            pair: np.full(
                rounds,
                self._intact.connected(self._index[pair[0]], self._index[pair[1]]),
                dtype=bool,
            )
            for pair in pairs
        }

        failure_rounds = states.rounds_with_failures(self._relevant_ids())
        for round_index in failure_rounds:
            uf = self._components_for_round(states, round_index)
            for a, b in pairs:
                if states.failed_in_round(a, round_index) or states.failed_in_round(
                    b, round_index
                ):
                    result[(a, b)][round_index] = False
                    continue
                result[(a, b)][round_index] = uf.connected(self._index[a], self._index[b])
        return result

    # ------------------------------------------------------------------
    # Debug / inspection helpers
    # ------------------------------------------------------------------

    def reachable_hosts_in_round(self, states: RoundStates, round_index: int) -> set[str]:
        """All hosts reachable from some alive border switch in one round."""
        uf = self._components_for_round(states, round_index)
        alive_borders = [
            self._index[b]
            for b in self.topology.border_switches
            if not states.failed_in_round(b, round_index)
        ]
        reachable = set()
        for host in self.topology.hosts:
            if states.failed_in_round(host, round_index):
                continue
            host_index = self._index[host]
            if any(uf.connected(host_index, ib) for ib in alive_borders):
                reachable.add(host)
        return reachable
