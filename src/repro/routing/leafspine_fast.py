"""Vectorised up-down route-and-check for leaf-spine fabrics.

Path structure is simpler than a fat-tree's:

* **external -> host**: border -> spine -> leaf -> host for some border
  switch and some spine.
* **host <-> host**: same leaf, or leafA -> spine -> leafB for some spine.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.faults.component import link_id
from repro.routing.base import (
    ReachabilityEngine,
    RoundStates,
    all_alive,
    any_path,
)
from repro.topology.leafspine import LeafSpineTopology
from repro.util.errors import TopologyError


class LeafSpineReachabilityEngine(ReachabilityEngine):
    """Up-down reachability over a :class:`LeafSpineTopology`."""

    supports_packed = True

    topology: LeafSpineTopology

    def __init__(self, topology: LeafSpineTopology):
        if not isinstance(topology, LeafSpineTopology):
            raise TopologyError(
                "LeafSpineReachabilityEngine requires a LeafSpineTopology"
            )
        super().__init__(topology)

    def _cache(self, states: RoundStates) -> dict:
        cache = getattr(states, "_leafspine_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(states, "_leafspine_cache", cache)
        return cache

    @staticmethod
    def _combine(*masks):
        """AND possibly-None alive masks (bitwise: dense or packed).

        May alias the single non-None input; combined masks are
        read-only by convention.
        """
        result = None
        owned = False
        for mask in masks:
            if mask is None:
                continue
            if result is None:
                result = mask
            elif owned:
                np.bitwise_and(result, mask, out=result)
            else:
                result = np.bitwise_and(result, mask)
                owned = True
        return result

    def _spine_external(self, states: RoundStates, spine: str):
        """Spine alive with an alive border switch attached."""
        cache = self._cache(states)
        key = ("spine_ext", spine)
        if key not in cache:
            paths = [
                all_alive(states, (border, link_id(border, spine)))
                for border in self.topology.border_switches
            ]
            cache[key] = self._combine(
                all_alive(states, (spine,)), any_path(paths, states)
            )
        return cache[key]

    def _leaf_external(self, states: RoundStates, leaf: str):
        cache = self._cache(states)
        key = ("leaf_ext", leaf)
        if key not in cache:
            paths = [
                self._combine(
                    self._spine_external(states, spine),
                    all_alive(states, (link_id(leaf, spine),)),
                )
                for spine in self.topology.spine_ids
            ]
            cache[key] = self._combine(
                all_alive(states, (leaf,)), any_path(paths, states)
            )
        return cache[key]

    def relevant_elements(self, hosts: Sequence[str]) -> set[str]:
        topo = self.topology
        elements: set[str] = set()
        leaves = set()
        for host in hosts:
            leaf = topo.edge_switch_of(host)
            elements.update((host, leaf, link_id(host, leaf)))
            leaves.add(leaf)
        for spine in topo.spine_ids:
            elements.add(spine)
            for leaf in leaves:
                elements.add(link_id(leaf, spine))
            for border in topo.border_switches:
                elements.add(border)
                elements.add(link_id(border, spine))
        return elements

    def external_reachable(
        self, states: RoundStates, hosts: Sequence[str]
    ) -> dict[str, np.ndarray]:
        topo = self.topology
        result = {}
        for host in hosts:
            leaf = topo.edge_switch_of(host)
            mask = self._combine(
                all_alive(states, (host, link_id(host, leaf))),
                self._leaf_external(states, leaf),
            )
            result[host] = states.materialize(mask)
        return result

    def pairwise_reachable(
        self, states: RoundStates, pairs: Sequence[tuple[str, str]]
    ) -> dict[tuple[str, str], np.ndarray]:
        topo = self.topology
        result = {}
        for a, b in pairs:
            if a == b:
                result[(a, b)] = states.materialize(
                    self._combine(all_alive(states, (a,)))
                )
                continue
            leaf_a = topo.edge_switch_of(a)
            leaf_b = topo.edge_switch_of(b)
            endpoints = self._combine(
                all_alive(
                    states, (a, b, link_id(a, leaf_a), link_id(b, leaf_b), leaf_a)
                ),
                all_alive(states, (leaf_b,)) if leaf_b != leaf_a else None,
            )
            if leaf_a == leaf_b:
                result[(a, b)] = states.materialize(endpoints)
                continue
            paths = [
                self._combine(
                    all_alive(
                        states, (spine, link_id(leaf_a, spine), link_id(leaf_b, spine))
                    )
                )
                for spine in topo.spine_ids
            ]
            mask = self._combine(endpoints, any_path(paths, states))
            result[(a, b)] = states.materialize(mask)
        return result
