"""Route-and-check engines: generic connectivity and fast per-architecture paths."""

from repro.routing.base import (
    ReachabilityEngine,
    RoundStates,
    all_alive,
    any_path,
    engine_for,
    materialize,
)
from repro.routing.fattree_fast import FatTreeReachabilityEngine
from repro.routing.generic import GenericReachabilityEngine
from repro.routing.leafspine_fast import LeafSpineReachabilityEngine

__all__ = [
    "FatTreeReachabilityEngine",
    "GenericReachabilityEngine",
    "LeafSpineReachabilityEngine",
    "ReachabilityEngine",
    "RoundStates",
    "all_alive",
    "any_path",
    "engine_for",
    "materialize",
]
