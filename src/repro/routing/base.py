"""Route-and-check interfaces (§3.2.1, Fig. 2).

Given per-round failure states of every network element (after fault-tree
reasoning), a reachability engine answers, per round and vectorised over
all rounds at once:

* *external reachability* — is host ``h`` reachable from **any** alive
  border switch? (the K-of-N aliveness criterion), and
* *pairwise reachability* — can host ``a`` reach host ``b``? (needed for
  complex application structures, §3.2.4).

Reachability follows the deployment architecture's routing protocol; for
a fat-tree that means up-down (valley-free) paths. Swapping the data-center
architecture only swaps the engine, exactly as §3.2.1 prescribes.

States are passed as a :class:`RoundStates` wrapper over boolean failure
vectors. Elements absent from the mapping never fail, which keeps the
common case (links with failure probability 0) free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.topology.base import Topology
from repro.util.errors import ConfigurationError


@dataclass
class RoundStates:
    """Effective per-round failure states of network elements and links.

    ``failed`` maps element/link component ids to boolean vectors of length
    ``rounds`` (True = failed in that round). Ids missing from the mapping
    are treated as always alive. For hosts and switches these are the
    *effective* states produced by fault-tree reasoning (§3.2.3), not the
    raw sampled states of the element's own hardware.

    The compiled kernel uses the :class:`PackedRoundStates` subclass,
    whose vectors are ``np.packbits`` rows (8 rounds per ``uint8`` byte)
    instead of dense booleans. Engines that only combine alive masks
    with :func:`all_alive` / :func:`any_path` / ``states.materialize``
    work on either representation unchanged, because those helpers use
    *bitwise* operators (identical to logical ones on booleans) and take
    their vector geometry from the states object.
    """

    #: True on subclasses whose vectors are bit-packed uint8 rows.
    packed = False

    rounds: int
    failed: Mapping[str, np.ndarray]

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ConfigurationError(f"rounds must be positive, got {self.rounds}")

    # -- vector geometry (overridden by PackedRoundStates) --------------

    @property
    def width(self) -> int:
        """Length of one state vector in array elements."""
        return self.rounds

    def zeros(self) -> np.ndarray:
        """A fresh all-False ("never alive" / "never failed") vector."""
        return np.zeros(self.rounds, dtype=bool)

    def materialize(self, mask: np.ndarray | None, alive: bool = True) -> np.ndarray:
        """Expand a possibly-``None`` mask into a concrete vector."""
        if mask is None:
            return np.full(self.rounds, alive, dtype=bool)
        return mask

    def unpack(self, vector: np.ndarray) -> np.ndarray:
        """Dense boolean per-round view of one state vector."""
        return vector

    # -- state queries ---------------------------------------------------

    def alive_mask(self, component_id: str) -> np.ndarray | None:
        """Per-round alive vector, or ``None`` when always alive."""
        failed = self.failed.get(component_id)
        if failed is None:
            return None
        return ~np.asarray(failed, dtype=bool)

    def is_always_alive(self, component_id: str) -> bool:
        """True when the element has no failure rounds at all."""
        failed = self.failed.get(component_id)
        return failed is None or not bool(np.any(failed))

    def failed_in_round(self, component_id: str, round_index: int) -> bool:
        """Scalar state query for one element in one round."""
        failed = self.failed.get(component_id)
        if failed is None:
            return False
        return bool(failed[round_index])

    def rounds_with_failures(self, component_ids: Iterable[str]) -> np.ndarray:
        """Indices of rounds where at least one listed element is failed.

        Rounds outside this set need no routing at all — everything is
        alive — which is the main fast path of per-round engines.
        """
        any_failed = np.zeros(self.rounds, dtype=bool)
        for cid in component_ids:
            failed = self.failed.get(cid)
            if failed is not None:
                np.logical_or(any_failed, failed, out=any_failed)
        return np.nonzero(any_failed)[0]


class PackedRoundStates(RoundStates):
    """Round states over bit-packed ``uint8`` rows (the kernel's native form).

    Each vector covers 8 rounds per byte (``np.packbits`` layout,
    MSB-first). Alive masks are bitwise complements, so the pad bits of
    the last byte read "alive" — harmless, because every consumer
    unpacks with ``count=rounds``, which drops them. Inverted alive rows
    are memoized per component: engines ask for the same few masks over
    and over while assembling path segments.
    """

    packed = True

    def __post_init__(self) -> None:
        super().__post_init__()
        self._alive_cache: dict[str, np.ndarray] = {}

    @property
    def width(self) -> int:
        return (self.rounds + 7) // 8

    def zeros(self) -> np.ndarray:
        return np.zeros(self.width, dtype=np.uint8)

    def materialize(self, mask: np.ndarray | None, alive: bool = True) -> np.ndarray:
        if mask is None:
            return np.full(self.width, 0xFF if alive else 0x00, dtype=np.uint8)
        return mask

    def unpack(self, vector: np.ndarray) -> np.ndarray:
        return np.unpackbits(vector, count=self.rounds).view(bool)

    def alive_mask(self, component_id: str) -> np.ndarray | None:
        cached = self._alive_cache.get(component_id)
        if cached is not None:
            return cached
        failed = self.failed.get(component_id)
        if failed is None:
            return None
        cached = np.invert(failed)
        cached.flags.writeable = False
        self._alive_cache[component_id] = cached
        return cached

    def failed_in_round(self, component_id: str, round_index: int) -> bool:
        failed = self.failed.get(component_id)
        if failed is None:
            return False
        byte, bit = divmod(round_index, 8)
        return bool(failed[byte] >> (7 - bit) & 1)

    def rounds_with_failures(self, component_ids: Iterable[str]) -> np.ndarray:
        any_failed = self.zeros()
        for cid in component_ids:
            failed = self.failed.get(cid)
            if failed is not None:
                np.bitwise_or(any_failed, failed, out=any_failed)
        return np.nonzero(self.unpack(any_failed))[0]


def all_alive(states: RoundStates, component_ids: Iterable[str]) -> np.ndarray | None:
    """AND of the alive vectors of several elements (None = always alive).

    Uses bitwise AND so the same code handles dense boolean vectors and
    the kernel's packed ``uint8`` rows (on booleans the two coincide).

    Returned arrays may alias a mask owned by ``states`` — treat them as
    read-only (as :func:`any_path` and the engines' combine helpers do).
    """
    result: np.ndarray | None = None
    owned = False
    for cid in component_ids:
        mask = states.alive_mask(cid)
        if mask is None:
            continue
        if result is None:
            result = mask
        elif owned:
            np.bitwise_and(result, mask, out=result)
        else:
            result = np.bitwise_and(result, mask)
            owned = True
    return result


def any_path(
    paths: Sequence[np.ndarray | None], rounds: "int | RoundStates"
) -> np.ndarray | None:
    """OR of per-path alive vectors.

    ``None`` entries mean "that path is always available", so the result is
    also ``None`` (always reachable). An empty sequence means no path
    exists: an all-False vector. ``rounds`` may be the round count (dense
    vectors, the historical signature) or the :class:`RoundStates` the
    paths came from — required for packed states, whose empty-path vector
    is byte-sized.
    """
    if any(path is None for path in paths):
        return None
    if not paths:
        if isinstance(rounds, RoundStates):
            return rounds.zeros()
        return np.zeros(rounds, dtype=bool)
    result = paths[0]
    owned = False
    for path in paths[1:]:
        if owned:
            np.bitwise_or(result, path, out=result)
        else:
            result = np.bitwise_or(result, path)
            owned = True
    return result


def materialize(mask: np.ndarray | None, rounds: int, alive: bool = True) -> np.ndarray:
    """Expand a possibly-None alive mask into a concrete boolean vector.

    Dense-representation helper kept for compatibility; representation-
    agnostic callers should use ``states.materialize(mask)`` instead.
    """
    if mask is None:
        return np.full(rounds, alive, dtype=bool)
    return mask


class ReachabilityEngine:
    """Architecture-specific route-and-check."""

    #: True on engines whose route-and-check is pure boolean algebra over
    #: alive masks and therefore works on :class:`PackedRoundStates`
    #: unchanged. The generic per-round engine reads individual rounds,
    #: so it stays dense-only.
    supports_packed = False

    def __init__(self, topology: Topology):
        self.topology = topology

    def external_reachable(
        self, states: RoundStates, hosts: Sequence[str]
    ) -> dict[str, np.ndarray]:
        """Per host: boolean vector, True in rounds where the host is alive
        and reachable from at least one alive border switch."""
        raise NotImplementedError

    def pairwise_reachable(
        self, states: RoundStates, pairs: Sequence[tuple[str, str]]
    ) -> dict[tuple[str, str], np.ndarray]:
        """Per host pair: boolean vector, True in rounds where both hosts
        are alive and a routed path exists between them."""
        raise NotImplementedError

    def relevant_elements(self, hosts: Sequence[str]) -> set[str]:
        """Every element/link id this engine may read for these hosts.

        This is the network part of an assessment's sampling closure:
        components outside it cannot influence any reachability answer for
        the given hosts, so they need no failure states at all (components
        fail independently, hence restricting sampling to the closure draws
        from the identical joint distribution over what is read).
        """
        raise NotImplementedError


def engine_for(topology: Topology) -> ReachabilityEngine:
    """Pick the best engine for a topology.

    Fat-trees and leaf-spines get their vectorised up-down engines; any
    other architecture falls back to the generic per-round engine.
    """
    # Imported here to avoid a routing <-> topology import cycle at load time.
    from repro.routing.fattree_fast import FatTreeReachabilityEngine
    from repro.routing.generic import GenericReachabilityEngine
    from repro.routing.leafspine_fast import LeafSpineReachabilityEngine
    from repro.topology.fattree import FatTreeTopology
    from repro.topology.leafspine import LeafSpineTopology

    if isinstance(topology, FatTreeTopology):
        return FatTreeReachabilityEngine(topology)
    if isinstance(topology, LeafSpineTopology):
        return LeafSpineReachabilityEngine(topology)
    return GenericReachabilityEngine(topology)
