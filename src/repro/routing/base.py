"""Route-and-check interfaces (§3.2.1, Fig. 2).

Given per-round failure states of every network element (after fault-tree
reasoning), a reachability engine answers, per round and vectorised over
all rounds at once:

* *external reachability* — is host ``h`` reachable from **any** alive
  border switch? (the K-of-N aliveness criterion), and
* *pairwise reachability* — can host ``a`` reach host ``b``? (needed for
  complex application structures, §3.2.4).

Reachability follows the deployment architecture's routing protocol; for
a fat-tree that means up-down (valley-free) paths. Swapping the data-center
architecture only swaps the engine, exactly as §3.2.1 prescribes.

States are passed as a :class:`RoundStates` wrapper over boolean failure
vectors. Elements absent from the mapping never fail, which keeps the
common case (links with failure probability 0) free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.topology.base import Topology
from repro.util.errors import ConfigurationError


@dataclass
class RoundStates:
    """Effective per-round failure states of network elements and links.

    ``failed`` maps element/link component ids to boolean vectors of length
    ``rounds`` (True = failed in that round). Ids missing from the mapping
    are treated as always alive. For hosts and switches these are the
    *effective* states produced by fault-tree reasoning (§3.2.3), not the
    raw sampled states of the element's own hardware.
    """

    rounds: int
    failed: Mapping[str, np.ndarray]

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ConfigurationError(f"rounds must be positive, got {self.rounds}")

    def alive_mask(self, component_id: str) -> np.ndarray | None:
        """Per-round alive vector, or ``None`` when always alive."""
        failed = self.failed.get(component_id)
        if failed is None:
            return None
        return ~np.asarray(failed, dtype=bool)

    def is_always_alive(self, component_id: str) -> bool:
        """True when the element has no failure rounds at all."""
        failed = self.failed.get(component_id)
        return failed is None or not bool(np.any(failed))

    def failed_in_round(self, component_id: str, round_index: int) -> bool:
        """Scalar state query for one element in one round."""
        failed = self.failed.get(component_id)
        if failed is None:
            return False
        return bool(failed[round_index])

    def rounds_with_failures(self, component_ids: Iterable[str]) -> np.ndarray:
        """Indices of rounds where at least one listed element is failed.

        Rounds outside this set need no routing at all — everything is
        alive — which is the main fast path of per-round engines.
        """
        any_failed = np.zeros(self.rounds, dtype=bool)
        for cid in component_ids:
            failed = self.failed.get(cid)
            if failed is not None:
                np.logical_or(any_failed, failed, out=any_failed)
        return np.nonzero(any_failed)[0]


def all_alive(states: RoundStates, component_ids: Iterable[str]) -> np.ndarray | None:
    """AND of the alive vectors of several elements (None = always alive)."""
    result: np.ndarray | None = None
    for cid in component_ids:
        mask = states.alive_mask(cid)
        if mask is None:
            continue
        if result is None:
            result = mask.copy()
        else:
            np.logical_and(result, mask, out=result)
    return result


def any_path(paths: Sequence[np.ndarray | None], rounds: int) -> np.ndarray | None:
    """OR of per-path alive vectors.

    ``None`` entries mean "that path is always available", so the result is
    also ``None`` (always reachable). An empty sequence means no path
    exists: an all-False vector.
    """
    if any(path is None for path in paths):
        return None
    if not paths:
        return np.zeros(rounds, dtype=bool)
    result = paths[0].copy()
    for path in paths[1:]:
        np.logical_or(result, path, out=result)
    return result


def materialize(mask: np.ndarray | None, rounds: int, alive: bool = True) -> np.ndarray:
    """Expand a possibly-None alive mask into a concrete boolean vector."""
    if mask is None:
        return np.full(rounds, alive, dtype=bool)
    return mask


class ReachabilityEngine:
    """Architecture-specific route-and-check."""

    def __init__(self, topology: Topology):
        self.topology = topology

    def external_reachable(
        self, states: RoundStates, hosts: Sequence[str]
    ) -> dict[str, np.ndarray]:
        """Per host: boolean vector, True in rounds where the host is alive
        and reachable from at least one alive border switch."""
        raise NotImplementedError

    def pairwise_reachable(
        self, states: RoundStates, pairs: Sequence[tuple[str, str]]
    ) -> dict[tuple[str, str], np.ndarray]:
        """Per host pair: boolean vector, True in rounds where both hosts
        are alive and a routed path exists between them."""
        raise NotImplementedError

    def relevant_elements(self, hosts: Sequence[str]) -> set[str]:
        """Every element/link id this engine may read for these hosts.

        This is the network part of an assessment's sampling closure:
        components outside it cannot influence any reachability answer for
        the given hosts, so they need no failure states at all (components
        fail independently, hence restricting sampling to the closure draws
        from the identical joint distribution over what is read).
        """
        raise NotImplementedError


def engine_for(topology: Topology) -> ReachabilityEngine:
    """Pick the best engine for a topology.

    Fat-trees and leaf-spines get their vectorised up-down engines; any
    other architecture falls back to the generic per-round engine.
    """
    # Imported here to avoid a routing <-> topology import cycle at load time.
    from repro.routing.fattree_fast import FatTreeReachabilityEngine
    from repro.routing.generic import GenericReachabilityEngine
    from repro.routing.leafspine_fast import LeafSpineReachabilityEngine
    from repro.topology.fattree import FatTreeTopology
    from repro.topology.leafspine import LeafSpineTopology

    if isinstance(topology, FatTreeTopology):
        return FatTreeReachabilityEngine(topology)
    if isinstance(topology, LeafSpineTopology):
        return LeafSpineReachabilityEngine(topology)
    return GenericReachabilityEngine(topology)
