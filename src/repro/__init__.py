"""reCloud reproduction: reliable application deployment in the cloud.

A from-scratch Python implementation of the reCloud system (Chen et al.,
CoNEXT 2017): quantitative reliability assessment of cloud deployment
plans under correlated failures, with rigorous error bounds, plus a
simulated-annealing search for plans that meet a developer's reliability
requirements - including applications with complex internal structures and
multi-objective (reliability + utility) trade-offs.

Quickstart::

    from repro import (
        ApplicationStructure, AssessmentConfig, DeploymentSearch,
        SearchSpec, build_assessor, build_paper_inventory, paper_topology,
    )

    topology = paper_topology("small", seed=1)
    inventory = build_paper_inventory(topology, seed=2)
    assessor = build_assessor(topology, inventory, AssessmentConfig(rng=3))
    search = DeploymentSearch(assessor, rng=4)
    spec = SearchSpec(ApplicationStructure.k_of_n(4, 5), max_seconds=10.0)
    result = search.search(spec)
    print(result.best_assessment.estimate)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.app import (
    EXTERNAL,
    ApplicationStructure,
    ComponentSpec,
    InstanceRef,
    ReachabilityRequirement,
    microservice_mesh,
    multilayer,
    two_tier,
)
from repro.baselines import (
    IndaasComparator,
    best_of_random,
    common_practice_plan,
    enhanced_common_practice_plan,
    power_diversity,
    random_plan,
    top_plans,
)
from repro.core import (
    AssessmentConfig,
    AssessmentResult,
    Assessor,
    BandwidthUtilityObjective,
    CompositeObjective,
    DeploymentPlan,
    DeploymentSearch,
    IncrementalAssessor,
    ReliabilityAssessor,
    ReliabilityObjective,
    RiskAnalyzer,
    RiskEntry,
    SearchResult,
    SearchSpec,
    SymmetryChecker,
    WorkloadUtilityObjective,
    ZoneConstraints,
    build_assessor,
)
from repro.faults import (
    Component,
    ComponentType,
    DependencyModel,
    FaultTree,
    PaperProbabilityPolicy,
    build_paper_inventory,
    build_rich_inventory,
    build_zone_inventory,
)
from repro.routing import engine_for
from repro.runtime import ParallelAssessor, ZoneOutage
from repro.service import RedeploymentController
from repro.sampling import (
    DaggerSampler,
    ExtendedDaggerSampler,
    MonteCarloSampler,
    ReliabilityEstimate,
)
from repro.topology import (
    FatTreeTopology,
    LeafSpineTopology,
    MultiZoneTopology,
    Topology,
    paper_topology,
)
from repro.workload import HostWorkloadModel

__version__ = "1.0.0"

__all__ = [
    "ApplicationStructure",
    "AssessmentConfig",
    "AssessmentResult",
    "Assessor",
    "BandwidthUtilityObjective",
    "Component",
    "ComponentSpec",
    "ComponentType",
    "CompositeObjective",
    "DaggerSampler",
    "DependencyModel",
    "DeploymentPlan",
    "DeploymentSearch",
    "EXTERNAL",
    "ExtendedDaggerSampler",
    "FatTreeTopology",
    "FaultTree",
    "HostWorkloadModel",
    "IncrementalAssessor",
    "IndaasComparator",
    "InstanceRef",
    "LeafSpineTopology",
    "MonteCarloSampler",
    "MultiZoneTopology",
    "PaperProbabilityPolicy",
    "ParallelAssessor",
    "ReachabilityRequirement",
    "RedeploymentController",
    "ReliabilityAssessor",
    "ReliabilityEstimate",
    "ReliabilityObjective",
    "RiskAnalyzer",
    "RiskEntry",
    "SearchResult",
    "SearchSpec",
    "SymmetryChecker",
    "Topology",
    "WorkloadUtilityObjective",
    "ZoneConstraints",
    "ZoneOutage",
    "__version__",
    "best_of_random",
    "build_assessor",
    "build_paper_inventory",
    "build_rich_inventory",
    "build_zone_inventory",
    "common_practice_plan",
    "engine_for",
    "enhanced_common_practice_plan",
    "microservice_mesh",
    "multilayer",
    "paper_topology",
    "power_diversity",
    "random_plan",
    "top_plans",
    "two_tier",
]
