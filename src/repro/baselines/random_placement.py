"""Random-placement baselines.

The weakest reference points: a single uniformly random plan (reCloud's
own Step-1 starting point) and best-of-``k`` random plans (what a naive
"generate and assess a few" approach achieves without any search).
"""

from __future__ import annotations

import numpy as np

from repro.app.structure import ApplicationStructure
from repro.core.assessment import ReliabilityAssessor
from repro.core.plan import DeploymentPlan
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng


def random_plan(
    topology: Topology,
    structure: ApplicationStructure,
    rng: int | np.random.Generator | None = None,
    forbid_shared_rack: bool = False,
) -> DeploymentPlan:
    """One uniformly random plan (optionally rack-diverse)."""
    return DeploymentPlan.random(
        topology, structure, rng=rng, forbid_shared_rack=forbid_shared_rack
    )


def best_of_random(
    assessor: ReliabilityAssessor,
    structure: ApplicationStructure,
    candidates: int,
    rng: int | np.random.Generator | None = None,
    forbid_shared_rack: bool = False,
) -> tuple[DeploymentPlan, float]:
    """Assess ``candidates`` random plans and keep the most reliable.

    This is the naive search the paper dismisses as unscalable (§1): it
    serves as the no-annealing ablation reference.
    """
    if candidates < 1:
        raise ConfigurationError(f"need at least one candidate, got {candidates}")
    generator = make_rng(rng)
    best_plan: DeploymentPlan | None = None
    best_score = -1.0
    for _ in range(candidates):
        plan = random_plan(
            assessor.topology,
            structure,
            rng=generator,
            forbid_shared_rack=forbid_shared_rack,
        )
        score = assessor.assess(plan, structure).score
        if score > best_score:
            best_plan, best_score = plan, score
    assert best_plan is not None
    return best_plan, best_score
