"""Baselines: common practice, enhanced common practice, INDaaS, random."""

from repro.baselines.common_practice import (
    common_practice_plan,
    enhanced_common_practice_plan,
    power_diversity,
    spread_plan_across_pods,
    top_plans,
)
from repro.baselines.indaas import IndaasComparator, RankedPlan
from repro.baselines.random_placement import best_of_random, random_plan

__all__ = [
    "IndaasComparator",
    "RankedPlan",
    "best_of_random",
    "common_practice_plan",
    "enhanced_common_practice_plan",
    "power_diversity",
    "random_plan",
    "spread_plan_across_pods",
    "top_plans",
]
