"""An INDaaS-style comparator (Zhai et al., OSDI 2014) — the prior system.

INDaaS is the system reCloud improves on (§1, §5). Its characteristics,
reproduced here as a baseline:

* it **compares given deployment plans** and picks the most independent
  one — it cannot search for plans;
* its sampling is **Monte-Carlo**, not dagger (the cost gap is Fig. 7);
* it reports **relative rankings**, not quantitative reliability with
  error bounds — mirrored by returning an ordering plus opaque scores;
* it treats the application as a **monolithic entity**: only simple
  "K alive of N" checks, no internal structure.

Internally we reuse reCloud's assessor with a Monte-Carlo sampler, which
if anything flatters INDaaS (it shares our fast route-and-check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.api import DEFAULT_ROUNDS, AssessmentConfig, build_assessor
from repro.core.plan import DeploymentPlan
from repro.faults.dependencies import DependencyModel
from repro.sampling.montecarlo import MonteCarloSampler
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class RankedPlan:
    """One plan in INDaaS's output ranking (most independent first)."""

    rank: int
    plan: DeploymentPlan
    relative_score: float


class IndaasComparator:
    """Ranks *given* plans by independence, INDaaS-style."""

    def __init__(
        self,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        rounds: int = DEFAULT_ROUNDS,
        rng: int | np.random.Generator | None = None,
    ):
        self._assessor = build_assessor(
            topology,
            dependency_model,
            AssessmentConfig(
                rounds=rounds,
                sampler=MonteCarloSampler(),
                rng=rng,
            ),
        )

    def rank_plans(
        self, plans: Sequence[DeploymentPlan], k: int
    ) -> list[RankedPlan]:
        """Order candidate plans from most to least reliable.

        Following INDaaS's interface, only the *relative* ordering is
        meaningful; no error bounds accompany the scores, and the caller
        must supply the candidate plans.
        """
        if not plans:
            raise ConfigurationError("INDaaS needs at least one candidate plan")
        sizes = {plan.instance_count() for plan in plans}
        if len(sizes) != 1:
            raise ConfigurationError(
                f"all candidate plans must deploy the same instance count, got {sizes}"
            )
        scored = []
        for plan in plans:
            result = self._assessor.assess_k_of_n(plan.hosts(), k)
            scored.append((result.score, plan))
        scored.sort(key=lambda item: item[0], reverse=True)
        return [
            RankedPlan(rank=i + 1, plan=plan, relative_score=score)
            for i, (score, plan) in enumerate(scored)
        ]

    def select_most_independent(
        self, plans: Sequence[DeploymentPlan], k: int
    ) -> DeploymentPlan:
        """INDaaS's end result: the most independent of the given plans."""
        return self.rank_plans(plans, k)[0].plan
