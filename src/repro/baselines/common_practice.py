"""The operators' common practice and its enhanced variant (§4.2.2).

*Common practice* (learned from the paper's cloud-operator contacts):
deploy the N application instances onto the least-loaded hosts, each host
in a different rack. It has no notion of shared dependencies, so its
redundancy can be silently undermined by, e.g., a power supply feeding
several of the chosen racks.

*Enhanced common practice* (the baseline of Fig. 9): run the vanilla
practice 5 times to generate the top-5 non-repeating plans, and pick the
plan with the most diversified power supplies.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.plan import DeploymentPlan
from repro.faults.dependencies import DependencyModel
from repro.faults.inventory import power_supplies_of_plan
from repro.topology.base import Topology
from repro.util.errors import UnsatisfiableRequirements
from repro.workload.model import HostWorkloadModel


def common_practice_plan(
    topology: Topology,
    workload: HostWorkloadModel,
    instances: int,
    component: str = "app",
    exclude_hosts: frozenset[str] = frozenset(),
) -> DeploymentPlan:
    """Least-loaded hosts, one per rack (the vanilla common practice).

    ``exclude_hosts`` supports generating the "top-5 non-repeating" plans:
    hosts already used by earlier plans are skipped.
    """
    chosen: list[str] = []
    used_racks: set[str] = set()
    for host in workload.rank_least_loaded(topology.hosts):
        if host in exclude_hosts:
            continue
        rack = topology.rack_of(host)
        if rack in used_racks:
            continue
        chosen.append(host)
        used_racks.add(rack)
        if len(chosen) == instances:
            return DeploymentPlan.single_component(chosen, component)
    raise UnsatisfiableRequirements(
        f"cannot place {instances} instances in distinct racks "
        f"({len(chosen)} feasible)"
    )


def top_plans(
    topology: Topology,
    workload: HostWorkloadModel,
    instances: int,
    count: int = 5,
    component: str = "app",
) -> list[DeploymentPlan]:
    """The top-``count`` non-repeating common-practice plans.

    Each run excludes the hosts of all earlier plans, yielding the next
    tier of least-loaded rack-diverse placements.
    """
    plans: list[DeploymentPlan] = []
    excluded: set[str] = set()
    for _ in range(count):
        plan = common_practice_plan(
            topology,
            workload,
            instances,
            component=component,
            exclude_hosts=frozenset(excluded),
        )
        plans.append(plan)
        excluded.update(plan.hosts())
    return plans


def power_diversity(model: DependencyModel, plan: DeploymentPlan) -> int:
    """Number of distinct power supplies feeding the plan's hosts.

    Counted over each host's fault-tree power dependencies; more distinct
    supplies = fewer instances lost to any single power failure.
    """
    supplies = power_supplies_of_plan(model, plan.hosts())
    return len(frozenset().union(*supplies)) if supplies else 0


def enhanced_common_practice_plan(
    topology: Topology,
    workload: HostWorkloadModel,
    dependency_model: DependencyModel,
    instances: int,
    candidate_plans: int = 5,
    component: str = "app",
) -> DeploymentPlan:
    """The enhanced common practice baseline of §4.2.2.

    Generates the top-``candidate_plans`` vanilla plans and returns the one
    with the most diversified power supplies (ties keep the least-loaded,
    i.e. earliest, plan).
    """
    plans = top_plans(topology, workload, instances, candidate_plans, component)
    return max(plans, key=lambda plan: power_diversity(dependency_model, plan))


def spread_plan_across_pods(
    topology: Topology,
    workload: HostWorkloadModel,
    instances: int,
    component: str = "app",
) -> DeploymentPlan:
    """A stronger heuristic: least-loaded hosts, one per *pod*.

    Not part of the paper's baselines; used by ablation studies to show
    how far heuristics get without quantitative assessment.
    """
    pod_of = getattr(topology, "pod_of", None)
    if pod_of is None:
        return common_practice_plan(topology, workload, instances, component)
    chosen: list[str] = []
    used_pods: set = set()
    for host in workload.rank_least_loaded(topology.hosts):
        pod = pod_of(host)
        if pod in used_pods:
            continue
        chosen.append(host)
        used_pods.add(pod)
        if len(chosen) == instances:
            return DeploymentPlan.single_component(chosen, component)
    raise UnsatisfiableRequirements(
        f"cannot place {instances} instances in distinct pods "
        f"({len(chosen)} feasible)"
    )
