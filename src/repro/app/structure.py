"""Application structures: components, instances and reachability demands.

§3.2.4: a cloud application may be a single K-of-N component, a layered
stack (frontends -> databases), or a microservice mesh with hundreds of
components. The developer specifies, per component ``Ci``:

* ``N_Ci`` — how many instances of ``Ci`` to deploy, and
* ``K_{Ci,Cj}`` — for each component ``Cj`` (or the external world), the
  minimum number of ``Ci`` instances that must be reachable from ``Cj``.

We use the constant :data:`EXTERNAL` as the source name for "a border
switch used for external connectivity".

Evaluation semantics (matching the paper's Fig. 6 walk-through): an
instance of ``Ci`` is *active* in a round when its host is alive and, for
every requirement ``(Ci, Cj)``, it can reach at least one active instance
of ``Cj`` (or a border switch for ``EXTERNAL``). A round is reliable when
every requirement ``(Ci, Cj, K)`` finds at least ``K`` active instances of
``Ci``. Mutual requirements (fully-meshed microservice cores) are resolved
as the greatest fixed point: start from "every alive instance is active"
and prune until stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.util.errors import ConfigurationError

#: Source name denoting the border switches ("reachable from the Internet").
EXTERNAL = "external"


@dataclass(frozen=True, slots=True)
class ComponentSpec:
    """One application component and its redundancy degree ``N_Ci``."""

    name: str
    instances: int

    def __post_init__(self) -> None:
        if not self.name or self.name == EXTERNAL:
            raise ConfigurationError(f"invalid component name {self.name!r}")
        if self.instances < 1:
            raise ConfigurationError(
                f"component {self.name!r} needs at least 1 instance, "
                f"got {self.instances}"
            )


@dataclass(frozen=True, slots=True)
class ReachabilityRequirement:
    """``K_{Ci,Cj}``: at least ``min_reachable`` instances of ``component``
    must be reachable from ``source`` (a component name or EXTERNAL)."""

    component: str
    source: str
    min_reachable: int

    def __post_init__(self) -> None:
        if self.component == self.source:
            raise ConfigurationError(
                f"component {self.component!r} cannot require reachability "
                "from itself"
            )
        if self.min_reachable < 1:
            raise ConfigurationError(
                f"min_reachable must be >= 1, got {self.min_reachable}"
            )


@dataclass(frozen=True, slots=True)
class InstanceRef:
    """One deployable instance: (component name, instance index)."""

    component: str
    index: int

    def __str__(self) -> str:
        return f"{self.component}#{self.index}"


class ApplicationStructure:
    """A validated set of components plus reachability requirements."""

    def __init__(
        self,
        components: Iterable[ComponentSpec],
        requirements: Iterable[ReachabilityRequirement],
        name: str = "app",
    ):
        self.name = name
        self.components: tuple[ComponentSpec, ...] = tuple(components)
        self.requirements: tuple[ReachabilityRequirement, ...] = tuple(requirements)
        self._by_name: dict[str, ComponentSpec] = {}
        for spec in self.components:
            if spec.name in self._by_name:
                raise ConfigurationError(f"duplicate component {spec.name!r}")
            self._by_name[spec.name] = spec
        if not self.components:
            raise ConfigurationError("an application needs at least one component")
        self._validate_requirements()

    def _validate_requirements(self) -> None:
        seen: set[tuple[str, str]] = set()
        for req in self.requirements:
            if req.component not in self._by_name:
                raise ConfigurationError(
                    f"requirement targets unknown component {req.component!r}"
                )
            if req.source != EXTERNAL and req.source not in self._by_name:
                raise ConfigurationError(
                    f"requirement references unknown source {req.source!r}"
                )
            if req.min_reachable > self._by_name[req.component].instances:
                raise ConfigurationError(
                    f"requirement asks for {req.min_reachable} reachable instances "
                    f"of {req.component!r} but only "
                    f"{self._by_name[req.component].instances} are deployed"
                )
            key = (req.component, req.source)
            if key in seen:
                raise ConfigurationError(
                    f"duplicate requirement for {req.component!r} from {req.source!r}"
                )
            seen.add(key)

    # ------------------------------------------------------------------

    def component(self, name: str) -> ComponentSpec:
        """The component spec with the given name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(f"unknown component {name!r}") from None

    def component_names(self) -> list[str]:
        return [spec.name for spec in self.components]

    @property
    def total_instances(self) -> int:
        """Total hosts a deployment plan for this structure needs."""
        return sum(spec.instances for spec in self.components)

    def instances(self) -> list[InstanceRef]:
        """Every instance reference, component by component."""
        return [
            InstanceRef(spec.name, index)
            for spec in self.components
            for index in range(spec.instances)
        ]

    def requirements_for(self, component_name: str) -> list[ReachabilityRequirement]:
        """Incoming requirements of one component."""
        return [r for r in self.requirements if r.component == component_name]

    def communication_edges(self) -> list[tuple[str, str]]:
        """(source, target) component pairs that must communicate.

        EXTERNAL edges are excluded; used by utility objectives that model
        inter-component traffic.
        """
        return [
            (r.source, r.component) for r in self.requirements if r.source != EXTERNAL
        ]

    @property
    def is_simple_k_of_n(self) -> bool:
        """True for the paper's basic scenario: one component, one external
        K-of-N requirement (§2.2)."""
        return (
            len(self.components) == 1
            and len(self.requirements) == 1
            and self.requirements[0].source == EXTERNAL
        )

    # ------------------------------------------------------------------
    # Constructors for common shapes
    # ------------------------------------------------------------------

    @classmethod
    def k_of_n(cls, k: int, n: int, name: str = "app") -> "ApplicationStructure":
        """The basic scenario: N instances, at least K alive (§2.2)."""
        if k > n:
            raise ConfigurationError(f"K ({k}) cannot exceed N ({n})")
        return cls(
            components=[ComponentSpec(name, n)],
            requirements=[ReachabilityRequirement(name, EXTERNAL, k)],
            name=f"{k}-of-{n}",
        )

    @classmethod
    def from_requirement_map(
        cls,
        instances: Mapping[str, int],
        k_map: Mapping[tuple[str, str], int],
        name: str = "app",
    ) -> "ApplicationStructure":
        """Build from ``N_Ci`` and ``K_{Ci,Cj}`` maps, the paper's notation.

        ``k_map`` keys are ``(component, source)`` pairs.
        """
        components = [ComponentSpec(c, n) for c, n in instances.items()]
        requirements = [
            ReachabilityRequirement(component, source, k)
            for (component, source), k in k_map.items()
        ]
        return cls(components, requirements, name=name)

    def __repr__(self) -> str:
        return (
            f"<ApplicationStructure {self.name!r}: {len(self.components)} components, "
            f"{self.total_instances} instances, {len(self.requirements)} requirements>"
        )
