"""Generators for the application shapes evaluated in the paper (§4.2.3).

* ``multilayer`` — a chain of layers where each layer's alive instances
  must reach the next layer's instances (Figs. 6 and 11: "1-4 layers").
* ``microservice_mesh`` — the paper's "X-Y" structure: X fully-meshed core
  components, each talking to its own Y supporting components (Fig. 11:
  3-5, 5-10 and 10-20 structures; 10-20 means 10 + 10*20 = 210 components).
* ``two_tier`` — the frontend/database example of Fig. 6.
"""

from __future__ import annotations

from repro.app.structure import (
    EXTERNAL,
    ApplicationStructure,
    ComponentSpec,
    ReachabilityRequirement,
)
from repro.util.errors import ConfigurationError


def two_tier(
    frontends: int = 2,
    databases: int = 2,
    k_frontend: int = 1,
    k_database: int = 1,
) -> ApplicationStructure:
    """Fig. 6's example: FE reachable externally, DB reachable from FE."""
    return ApplicationStructure(
        components=[
            ComponentSpec("frontend", frontends),
            ComponentSpec("database", databases),
        ],
        requirements=[
            ReachabilityRequirement("frontend", EXTERNAL, k_frontend),
            ReachabilityRequirement("database", "frontend", k_database),
        ],
        name="two-tier",
    )


def multilayer(
    layers: int, instances_per_layer: int = 5, k_per_layer: int = 4
) -> ApplicationStructure:
    """A chain of ``layers`` components, 4-of-5 redundancy each (§4.2.3).

    Layer 0 must be reachable externally; the alive instances of layer i
    must reach at least ``k_per_layer`` instances of layer i+1.
    """
    if layers < 1:
        raise ConfigurationError(f"need at least one layer, got {layers}")
    components = [
        ComponentSpec(f"layer{i}", instances_per_layer) for i in range(layers)
    ]
    requirements = [ReachabilityRequirement("layer0", EXTERNAL, k_per_layer)]
    for i in range(1, layers):
        requirements.append(
            ReachabilityRequirement(f"layer{i}", f"layer{i - 1}", k_per_layer)
        )
    return ApplicationStructure(components, requirements, name=f"{layers}-layer")


def microservice_mesh(
    cores: int,
    supports_per_core: int,
    instances_per_component: int = 5,
    k_per_component: int = 4,
    externally_reachable_cores: int = 1,
) -> ApplicationStructure:
    """The paper's "X-Y" microservice structure (§4.2.3).

    ``cores`` core components are fully meshed (every core must reach every
    other core); each core additionally communicates with its own
    ``supports_per_core`` supporting components. Every component uses
    ``k_per_component``-of-``instances_per_component`` redundancy. The
    first ``externally_reachable_cores`` cores must also be reachable from
    the outside, anchoring the whole mesh to the border switches.
    """
    if cores < 1:
        raise ConfigurationError(f"need at least one core component, got {cores}")
    if supports_per_core < 0:
        raise ConfigurationError(
            f"supports_per_core must be >= 0, got {supports_per_core}"
        )
    if not 1 <= externally_reachable_cores <= cores:
        raise ConfigurationError(
            f"externally_reachable_cores must be in [1, {cores}], "
            f"got {externally_reachable_cores}"
        )

    components = []
    requirements = []
    for c in range(cores):
        core_name = f"core{c}"
        components.append(ComponentSpec(core_name, instances_per_component))
        if c < externally_reachable_cores:
            requirements.append(
                ReachabilityRequirement(core_name, EXTERNAL, k_per_component)
            )
    # Full mesh among cores: each core reachable from every other core.
    for a in range(cores):
        for b in range(cores):
            if a != b:
                requirements.append(
                    ReachabilityRequirement(f"core{a}", f"core{b}", k_per_component)
                )
    # Each core's private supporting components.
    for c in range(cores):
        for s in range(supports_per_core):
            support_name = f"support{c}_{s}"
            components.append(ComponentSpec(support_name, instances_per_component))
            requirements.append(
                ReachabilityRequirement(support_name, f"core{c}", k_per_component)
            )
    return ApplicationStructure(
        components, requirements, name=f"microservice-{cores}-{supports_per_core}"
    )
