"""Application structures: K-of-N, layered and microservice applications."""

from repro.app.generators import microservice_mesh, multilayer, two_tier
from repro.app.structure import (
    EXTERNAL,
    ApplicationStructure,
    ComponentSpec,
    InstanceRef,
    ReachabilityRequirement,
)

__all__ = [
    "ApplicationStructure",
    "ComponentSpec",
    "EXTERNAL",
    "InstanceRef",
    "ReachabilityRequirement",
    "microservice_mesh",
    "multilayer",
    "two_tier",
]
