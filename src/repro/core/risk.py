"""What-if analysis: which single failures hurt a deployment plan most.

The incidents motivating the paper (§1) were all single shared-dependency
events — a power disruption, a storage-tier error — taking down many
"redundant" instances at once. This module quantifies exactly that for a
concrete plan: for every component in the plan's relevant closure it
answers *"if only this fails, how many instances go down, and does the
application survive?"*, producing a ranked risk report similar in spirit
to INDaaS's risk groups but instance-accurate and structure-aware.

The provider can use the report to justify a plan to a developer ("no
single power supply takes out more than one instance") or to pick which
dependency to pay down first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.app.structure import ApplicationStructure
from repro.core.evaluation import StructureEvaluator
from repro.core.plan import DeploymentPlan
from repro.faults.dependencies import DependencyModel
from repro.routing.base import ReachabilityEngine, RoundStates, engine_for
from repro.topology.base import Topology


@dataclass(frozen=True, slots=True)
class RiskEntry:
    """Impact of one component failing alone.

    Attributes:
        component_id: The failing component (network element or shared
            dependency such as a power supply or OS image).
        component_type: Its type name.
        failure_probability: Its per-window failure probability.
        instances_lost: How many application instances become inactive.
        components_degraded: Application components that lose at least
            one instance.
        application_down: Whether the loss violates some requirement
            ``K_{Ci,Cj}`` — i.e. this component alone is a single point
            of failure for the whole application.
        expected_loss: ``failure_probability * instances_lost`` — the
            expected number of instance-failures per window attributable
            to this component; the default ranking key.
    """

    component_id: str
    component_type: str
    failure_probability: float
    instances_lost: int
    components_degraded: tuple[str, ...]
    application_down: bool

    @property
    def expected_loss(self) -> float:
        return self.failure_probability * self.instances_lost


class RiskAnalyzer:
    """Single-failure impact analysis for deployment plans."""

    def __init__(
        self,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        engine: ReachabilityEngine | None = None,
    ):
        self.topology = topology
        self.dependency_model = dependency_model or DependencyModel.empty(topology)
        self.engine = engine or engine_for(topology)
        self._evaluator = StructureEvaluator(self.engine)

    # ------------------------------------------------------------------

    def _closure(self, plan: DeploymentPlan) -> tuple[set[str], set[str]]:
        elements = self.engine.relevant_elements(plan.hosts())
        subjects = {cid for cid in elements if cid in self.topology.graph}
        candidates = set(elements)
        candidates.update(self.dependency_model.basic_events_for(subjects))
        return subjects, candidates

    def _active_counts(
        self,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        subjects: set[str],
        failed_components: frozenset[str],
    ) -> dict[str, np.ndarray]:
        """Instance activity (1 round) given exactly these base failures."""
        failed_states: dict[str, np.ndarray] = {}
        for subject in subjects:
            tree = self.dependency_model.tree_for(subject)
            if tree.basic_events() & failed_components:
                if tree.evaluate_round(failed_components):
                    failed_states[subject] = np.array([True])
        for cid in failed_components:
            # Links (and any element without a fault tree entry) fail as
            # themselves.
            if cid in self.topology.components and cid not in failed_states:
                failed_states[cid] = np.array([True])
        states = RoundStates(1, failed_states)
        return self._evaluator.active_instances(states, plan, structure)

    def what_if(
        self,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        failed_components,
    ) -> tuple[bool, dict[str, int]]:
        """Outcome of a concrete failure scenario.

        Returns ``(application_survives, active_instances_per_component)``
        for the single round in which exactly ``failed_components`` have
        failed.
        """
        plan.validate_against(self.topology, structure)
        subjects, _ = self._closure(plan)
        active = self._active_counts(
            plan, structure, subjects, frozenset(failed_components)
        )
        counts = {name: int(matrix.sum()) for name, matrix in active.items()}
        survives = all(
            counts[req.component] >= req.min_reachable
            for req in structure.requirements
        )
        return survives, counts

    def report(
        self,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        include_network_elements: bool = True,
    ) -> list[RiskEntry]:
        """Single-failure risk entries, worst first.

        Entries are ranked by (application down, expected loss, instances
        lost). Components whose lone failure loses no instance are
        omitted — their risk is already captured by the instances' own
        entries.
        """
        plan.validate_against(self.topology, structure)
        subjects, candidates = self._closure(plan)
        if not include_network_elements:
            candidates = {
                cid for cid in candidates if cid not in self.topology.components
            }

        baseline = self._active_counts(plan, structure, subjects, frozenset())
        baseline_counts = {
            name: int(matrix.sum()) for name, matrix in baseline.items()
        }

        entries = []
        for cid in sorted(candidates):
            active = self._active_counts(plan, structure, subjects, frozenset((cid,)))
            lost = 0
            degraded = []
            for name, matrix in active.items():
                delta = baseline_counts[name] - int(matrix.sum())
                if delta > 0:
                    degraded.append(name)
                    lost += delta
            if lost == 0:
                continue
            down = any(
                int(active[req.component].sum()) < req.min_reachable
                for req in structure.requirements
            )
            component = self.dependency_model.component(cid)
            entries.append(
                RiskEntry(
                    component_id=cid,
                    component_type=component.component_type.value,
                    failure_probability=component.failure_probability,
                    instances_lost=lost,
                    components_degraded=tuple(sorted(degraded)),
                    application_down=down,
                )
            )
        entries.sort(
            key=lambda e: (e.application_down, e.expected_loss, e.instances_lost),
            reverse=True,
        )
        return entries

    def single_points_of_failure(
        self, plan: DeploymentPlan, structure: ApplicationStructure
    ) -> list[RiskEntry]:
        """Only the entries whose lone failure takes the application down."""
        return [e for e in self.report(plan, structure) if e.application_down]

    def max_instances_lost_to_one_failure(
        self, plan: DeploymentPlan, structure: ApplicationStructure
    ) -> int:
        """The plan's worst-case blast radius for any single failure."""
        entries = self.report(plan, structure)
        return max((e.instances_lost for e in entries), default=0)
