"""Reliable-deployment search: the provider-side 6-step loop (§3.3.1).

Given the developer's requirements — an application structure, the desired
reliability ``R_desired`` and the search budget ``T_max`` — the provider:

1. generates a random initial plan (optionally "no two hosts in one rack");
2. assesses its reliability (§3.2);
3. evolves a neighbour by swapping one host, and discards it without
   assessment when it is symmetric to the current plan (network
   transformations) or violates resource constraints;
4. assesses the neighbour;
5. accepts it if better, or with probability ``exp(-Δ/t)`` if worse,
   using the log-odds Δ (Eq. 5) and the linear budget temperature (Eq. 6);
6. repeats until a plan satisfies the requirements (success) or ``T_max``
   elapses (the requirements cannot currently be fulfilled — the best
   plan found is still reported).

Multi-objective search (§3.3.3) plugs in through the objective: pass a
:class:`~repro.core.objectives.CompositeObjective` and the loop optimises
the holistic measure instead of reliability alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.app.structure import ApplicationStructure
from repro.core.anneal import LinearTemperatureSchedule, accept_neighbor
from repro.core.assessment import ReliabilityAssessor
from repro.core.objectives import Objective, ReliabilityObjective
from repro.core.plan import DeploymentPlan
from repro.core.result import AssessmentResult, SearchRecord, SearchResult
from repro.core.transforms import SymmetryChecker
from repro.sampling.dagger import CommonRandomDaggerSampler
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng
from repro.util.timing import Deadline

#: Accepts a candidate plan; False drops it before assessment (§3.3.3's
#: "quickly discard any generated deployment plans that do not satisfy
#: resource constraints").
ResourceFilter = Callable[[DeploymentPlan], bool]


@dataclass(frozen=True)
class SearchSpec:
    """The developer's requirements handed to the provider (§2.2).

    Attributes:
        structure: What to deploy (components, N_Ci, K_{Ci,Cj}).
        desired_reliability: ``R_desired``; the search stops successfully
            once a plan reaches it. The paper's evaluation sets 1.0 so the
            search always runs the full budget.
        max_seconds: ``T_max``, the search budget.
        forbid_shared_rack: Apply the "no hosts from the same rack"
            heuristic to the initial plan.
        desired_measure: Optional additional bar on the holistic measure
            for multi-objective searches.
        max_iterations: Optional hard cap on loop iterations (useful for
            deterministic tests; production searches are time-bounded).
    """

    structure: ApplicationStructure
    desired_reliability: float = 1.0
    max_seconds: float = 30.0
    forbid_shared_rack: bool = False
    desired_measure: float | None = None
    max_iterations: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.desired_reliability <= 1.0:
            raise ConfigurationError(
                f"desired reliability must be in [0, 1], got {self.desired_reliability}"
            )
        if self.max_seconds <= 0:
            raise ConfigurationError(f"T_max must be positive, got {self.max_seconds}")


class DeploymentSearch:
    """Simulated-annealing search over deployment plans."""

    def __init__(
        self,
        assessor: ReliabilityAssessor,
        objective: Objective | None = None,
        symmetry: SymmetryChecker | None = None,
        use_symmetry: bool = True,
        resource_filter: ResourceFilter | None = None,
        rng: int | np.random.Generator | None = None,
        keep_trace: bool = False,
        common_random_numbers: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.assessor = assessor
        self.objective = objective or ReliabilityObjective()
        if use_symmetry:
            self.symmetry = symmetry or SymmetryChecker(
                assessor.topology, assessor.dependency_model
            )
        else:
            self.symmetry = None
        self.resource_filter = resource_filter
        self.rng = make_rng(rng)
        self.keep_trace = keep_trace
        self.common_random_numbers = common_random_numbers
        self._clock = clock

    def _search_assessor(self) -> ReliabilityAssessor:
        """The assessor used inside one search run.

        With common random numbers enabled (the default), assessments share
        per-component random streams, so comparing the current plan with a
        neighbour is a low-variance paired comparison — without it, the
        per-swap reliability gain is often smaller than the sampling noise
        and the annealing walk stalls. The winning plan is re-assessed
        independently before being reported (see :meth:`search`).
        """
        if not self.common_random_numbers:
            return self.assessor
        master_seed = int(self.rng.integers(0, 2**63))
        return ReliabilityAssessor(
            self.assessor.topology,
            self.assessor.dependency_model,
            sampler=CommonRandomDaggerSampler(master_seed),
            rounds=self.assessor.rounds,
            engine=self.assessor.engine,
            rng=self.rng,
            sample_full_infrastructure=self.assessor.sample_full_infrastructure,
        )

    # ------------------------------------------------------------------

    def search(
        self, spec: SearchSpec, initial_plan: DeploymentPlan | None = None
    ) -> SearchResult:
        """Run the 6-step loop and return the outcome."""
        deadline = Deadline(spec.max_seconds, clock=self._clock)
        schedule = LinearTemperatureSchedule(spec.max_seconds)
        trace: list[SearchRecord] = []
        assessor = self._search_assessor()

        # Steps 1-2: initial plan and its assessment.
        current_plan = initial_plan or DeploymentPlan.random(
            assessor.topology,
            spec.structure,
            rng=self.rng,
            forbid_shared_rack=spec.forbid_shared_rack,
        )
        current = assessor.assess(current_plan, spec.structure)
        current_measure = self.objective.measure(current_plan, current)
        plans_assessed = 1
        skipped_symmetric = 0
        skipped_resources = 0
        iterations = 0

        # Best-so-far tracking uses *independent* assessments: with many
        # noisy scores, "max of the sampled scores" systematically picks
        # winners whose luck does not replicate (winner's curse), so a
        # candidate only becomes the new best after a fresh assessment,
        # drawn independently of the one that nominated it, confirms it.
        best_plan = current_plan
        best = self.assessor.assess(current_plan, spec.structure)
        best_measure = self.objective.measure(best_plan, best)
        plans_assessed += 1
        if self._satisfied(spec, current, current_measure):
            verified = self._verify_satisfaction(spec, current_plan, current)
            if verified is not None:
                return self._result(
                    spec, best_plan, verified, True, deadline, iterations,
                    plans_assessed, skipped_symmetric, trace,
                )

        # Steps 3-6: evolve neighbours until satisfied or out of budget.
        while not deadline.expired():
            if spec.max_iterations is not None and iterations >= spec.max_iterations:
                break
            iterations += 1

            neighbor_plan = current_plan.random_neighbor(
                assessor.topology, rng=self.rng
            )
            if self.resource_filter is not None and not self.resource_filter(
                neighbor_plan
            ):
                skipped_resources += 1
                continue
            if self.symmetry is not None and self.symmetry.equivalent(
                neighbor_plan, current_plan
            ):
                # Symmetric to the current plan: same reliability, skip the
                # assessment and evolve again (Step 3).
                skipped_symmetric += 1
                if self.keep_trace:
                    trace.append(
                        SearchRecord(
                            iteration=iterations,
                            elapsed_seconds=deadline.elapsed(),
                            temperature=schedule.temperature(deadline.elapsed()),
                            candidate_score=current.score,
                            current_score=current.score,
                            best_score=best.score,
                            accepted=False,
                            skipped_symmetric=True,
                        )
                    )
                continue

            neighbor = assessor.assess(neighbor_plan, spec.structure)
            neighbor_measure = self.objective.measure(neighbor_plan, neighbor)
            plans_assessed += 1

            if self.objective.prefers(neighbor_plan, neighbor, best_plan, best):
                # Cheap screen passed; confirm with independent sampling
                # before dethroning the incumbent best.
                confirmation = self.assessor.assess(neighbor_plan, spec.structure)
                plans_assessed += 1
                if self.objective.prefers(
                    neighbor_plan, confirmation, best_plan, best
                ):
                    best_plan, best = neighbor_plan, confirmation
                    best_measure = self.objective.measure(best_plan, best)

            # Step 5: accept improvements, or worse plans probabilistically.
            delta = self.objective.delta(
                current_plan, current, neighbor_plan, neighbor
            )
            temperature = schedule.temperature(deadline.elapsed())
            accepted = accept_neighbor(delta, temperature, self.rng)
            if self.keep_trace:
                trace.append(
                    SearchRecord(
                        iteration=iterations,
                        elapsed_seconds=deadline.elapsed(),
                        temperature=temperature,
                        candidate_score=neighbor.score,
                        current_score=current.score,
                        best_score=best.score,
                        accepted=accepted,
                    )
                )
            if accepted:
                current_plan, current, current_measure = (
                    neighbor_plan,
                    neighbor,
                    neighbor_measure,
                )

            # Step 6: requirements met -> report the plan.
            if self._satisfied(spec, neighbor, neighbor_measure):
                verified = self._verify_satisfaction(spec, neighbor_plan, neighbor)
                if verified is not None:
                    return self._result(
                        spec, neighbor_plan, verified, True, deadline, iterations,
                        plans_assessed, skipped_symmetric, trace,
                    )

        # Budget exhausted: requirements not fulfilled; report the best
        # found (its assessment is already an independent confirmation).
        return self._result(
            spec, best_plan, best, False, deadline, iterations,
            plans_assessed, skipped_symmetric, trace,
        )

    # ------------------------------------------------------------------

    def _verify_satisfaction(
        self, spec: SearchSpec, plan: DeploymentPlan, assessment: AssessmentResult
    ) -> AssessmentResult | None:
        """Confirm a satisfying plan with independent randomness.

        Under common random numbers, a score that crossed ``R_desired``
        may owe the crossing to the shared seed; an independent assessment
        must agree before the search declares success. Returns the
        independent assessment, or ``None`` if satisfaction did not hold
        up (the caller keeps searching). Without CRN the original
        assessment stands.
        """
        if not self.common_random_numbers:
            return assessment
        independent = self.assessor.assess(plan, spec.structure)
        measure = self.objective.measure(plan, independent)
        if self._satisfied(spec, independent, measure):
            return independent
        return None

    def _satisfied(
        self, spec: SearchSpec, assessment: AssessmentResult, measure: float
    ) -> bool:
        if assessment.score < spec.desired_reliability:
            return False
        if spec.desired_measure is not None and measure < spec.desired_measure:
            return False
        return True

    @staticmethod
    def _result(
        spec, plan, assessment, satisfied, deadline, iterations,
        plans_assessed, skipped_symmetric, trace,
    ) -> SearchResult:
        return SearchResult(
            best_plan=plan,
            best_assessment=assessment,
            satisfied=satisfied,
            elapsed_seconds=deadline.elapsed(),
            iterations=iterations,
            plans_assessed=plans_assessed,
            plans_skipped_symmetric=skipped_symmetric,
            trace=tuple(trace),
        )
