"""Reliable-deployment search: the provider-side 6-step loop (§3.3.1).

Given the developer's requirements — an application structure, the desired
reliability ``R_desired`` and the search budget ``T_max`` — the provider:

1. generates a random initial plan (optionally "no two hosts in one rack");
2. assesses its reliability (§3.2);
3. evolves a neighbour by swapping one host, and discards it without
   assessment when it is symmetric to the current plan (network
   transformations) or violates resource constraints;
4. assesses the neighbour;
5. accepts it if better, or with probability ``exp(-Δ/t)`` if worse,
   using the log-odds Δ (Eq. 5) and the linear budget temperature (Eq. 6);
6. repeats until a plan satisfies the requirements (success) or ``T_max``
   elapses (the requirements cannot currently be fulfilled — the best
   plan found is still reported).

Multi-objective search (§3.3.3) plugs in through the objective: pass a
:class:`~repro.core.objectives.CompositeObjective` and the loop optimises
the holistic measure instead of reliability alone.

Long provider-side searches (the paper's ``T_max`` budgets, Figs. 9/12)
must survive the provider's own failures, so the loop is *resumable*:
pass ``checkpoint_path`` and the complete annealing state — current/best
plans and assessments, counters, consumed budget, RNG states, the
common-random-numbers master seed and the acceptance trace — is
serialized every ``checkpoint_every`` iterations (atomically, so a crash
mid-write cannot corrupt it). :meth:`DeploymentSearch.resume` continues a
checkpointed search and, for a given seed and clock, reproduces the exact
trajectory the uninterrupted run would have taken: the loop reads the
clock exactly once per iteration and checkpointing itself never touches
the clock, so interrupted and uninterrupted runs see identical elapsed
times, temperatures and acceptance draws.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.app.structure import ApplicationStructure
from repro.core.anneal import LinearTemperatureSchedule, accept_neighbor
from repro.core.api import AssessmentConfig, Assessor
from repro.core.assessment import ReliabilityAssessor
from repro.core.objectives import Objective, ReliabilityObjective
from repro.core.plan import DeploymentPlan, MoveDescriptor, ZoneConstraints
from repro.core.result import AssessmentResult, SearchRecord, SearchResult
from repro.core.transforms import BatchSymmetryFilter, SymmetryChecker
from repro.sampling.dagger import CommonRandomDaggerSampler
from repro.util.errors import ConfigurationError
from repro.util.metrics import MetricsRegistry
from repro.util.rng import make_rng
from repro.util.timing import Deadline

#: Accepts a candidate plan; False drops it before assessment (§3.3.3's
#: "quickly discard any generated deployment plans that do not satisfy
#: resource constraints").
ResourceFilter = Callable[[DeploymentPlan], bool]


@dataclass(frozen=True)
class SearchSpec:
    """The developer's requirements handed to the provider (§2.2).

    Attributes:
        structure: What to deploy (components, N_Ci, K_{Ci,Cj}).
        desired_reliability: ``R_desired``; the search stops successfully
            once a plan reaches it. The paper's evaluation sets 1.0 so the
            search always runs the full budget.
        max_seconds: ``T_max``, the search budget.
        forbid_shared_rack: Apply the "no hosts from the same rack"
            heuristic to the initial plan.
        desired_measure: Optional additional bar on the holistic measure
            for multi-objective searches.
        max_iterations: Optional hard cap on loop iterations (useful for
            deterministic tests; production searches are time-bounded).
        zone_constraints: Optional zone-aware placement constraints
            (multi-zone topologies): the initial plan is drawn inside the
            constrained space and every proposed move is screened at
            proposal time, so no assessment budget is spent on plans a
            zone policy forbids.
    """

    structure: ApplicationStructure
    desired_reliability: float = 1.0
    max_seconds: float = 30.0
    forbid_shared_rack: bool = False
    desired_measure: float | None = None
    max_iterations: int | None = None
    zone_constraints: ZoneConstraints | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.desired_reliability <= 1.0:
            raise ConfigurationError(
                f"desired reliability must be in [0, 1], got {self.desired_reliability}"
            )
        if self.max_seconds <= 0:
            raise ConfigurationError(f"T_max must be positive, got {self.max_seconds}")


@dataclass
class SearchState:
    """The complete annealing state between two iterations.

    Everything :meth:`DeploymentSearch.resume` needs to continue a search
    exactly where it stopped. Captured at the top of an iteration (after
    the previous iteration's mutations, before any new randomness is
    drawn) and serialized via ``repro.serialization``.
    """

    spec: SearchSpec
    current_plan: DeploymentPlan
    current: AssessmentResult
    current_measure: float
    best_plan: DeploymentPlan
    best: AssessmentResult
    best_measure: float
    iterations: int = 0
    plans_assessed: int = 0
    skipped_symmetric: int = 0
    skipped_resources: int = 0
    batch_size: int = 1
    candidates_proposed: int = 0
    batches_scored: int = 0
    elapsed_seconds: float = 0.0
    search_rng_state: dict | None = None
    assessor_rng_state: dict | None = None
    crn_master_seed: int | None = None
    trace: list[SearchRecord] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Stable, versioned JSON-ready encoding (schema in serialization.py)."""
        from repro import serialization

        return serialization.search_state_to_dict(self)

    @classmethod
    def from_dict(cls, document: dict) -> "SearchState":
        """Decode a checkpointed annealing state."""
        from repro import serialization

        return serialization.search_state_from_dict(document)


class DeploymentSearch:
    """Simulated-annealing search over deployment plans.

    ``checkpoint_path`` enables crash tolerance: the annealing state is
    written there every ``checkpoint_every`` iterations and whenever the
    loop stops (budget expiry, iteration cap, or ``should_stop`` — wire
    the latter to a SIGTERM flag for graceful preemption). A checkpoint
    is resumed with :meth:`resume`.
    """

    def __init__(
        self,
        assessor: Assessor,
        objective: Objective | None = None,
        symmetry: SymmetryChecker | None = None,
        use_symmetry: bool = True,
        resource_filter: ResourceFilter | None = None,
        rng: int | np.random.Generator | None = None,
        keep_trace: bool = False,
        common_random_numbers: bool = True,
        incremental: bool = True,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 10,
        should_stop: Callable[[], bool] | None = None,
        cancel=None,
        batch_size: int = 1,
        temperature_schedule=None,
    ):
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.assessor = assessor
        self.objective = objective or ReliabilityObjective()
        if use_symmetry:
            self.symmetry = symmetry or SymmetryChecker(
                assessor.topology, assessor.dependency_model
            )
            self._symmetry_filter = BatchSymmetryFilter(self.symmetry)
        else:
            self.symmetry = None
            self._symmetry_filter = None
        #: Candidates proposed (and scored in one ``score_plans`` call) per
        #: temperature step. ``1`` reproduces the classic one-neighbour
        #: loop bit-for-bit; see :meth:`_run` for the B>1 policy.
        self.batch_size = batch_size
        #: Optional schedule object with ``temperature(elapsed, moves)``;
        #: ``None`` keeps Eq. 6's wall-clock linear schedule. Pass a
        #: :class:`~repro.core.anneal.MoveBudgetTemperatureSchedule` for
        #: host-speed-independent trajectories.
        self.temperature_schedule = temperature_schedule
        self.resource_filter = resource_filter
        self.rng = make_rng(rng)
        self.keep_trace = keep_trace
        self.common_random_numbers = common_random_numbers
        self.incremental = incremental
        self.metrics = metrics
        self._clock = clock
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.should_stop = should_stop
        #: Optional :class:`~repro.util.cancel.CancellationToken`. Checked
        #: at the top of every annealing iteration (move granularity):
        #: when it fires, the loop checkpoints (if configured) and
        #: returns the best plan found so far — an anytime search result,
        #: never an exception.
        self.cancel = cancel

    @classmethod
    def from_config(
        cls,
        topology,
        dependency_model=None,
        config: AssessmentConfig | None = None,
        **search_kwargs,
    ) -> "DeploymentSearch":
        """Build a search from the unified assessment configuration.

        The *outer* assessor — used for independent best-so-far
        confirmations, which must draw fresh randomness on every call —
        is always the sequential from-scratch path; ``config.mode``
        instead selects the hot-path behaviour: ``"incremental"`` (also
        the default) runs the CRN search assessor through the
        :class:`~repro.core.incremental.IncrementalAssessor` caches,
        ``"sequential"`` keeps the from-scratch CRN assessor, and
        ``"analytic"`` wraps both the outer and the search assessor in
        the :class:`~repro.core.analytic.AnalyticAssessor` — candidate
        screening *and* best-so-far confirmation are exact wherever the
        closure is tractable (the hybrid exact-screen/sampled-confirm
        mode), falling back to the modes above per plan elsewhere.
        """
        config = config or AssessmentConfig(mode="incremental")
        registry = config.registry()
        if config.mode == "analytic":
            from repro.core.analytic import AnalyticAssessor

            outer = AnalyticAssessor.from_config(
                topology,
                dependency_model,
                config.with_updates(master_seed=None, metrics=registry),
            )
        else:
            outer = ReliabilityAssessor.from_config(
                topology,
                dependency_model,
                config.with_updates(
                    mode="sequential", master_seed=None, metrics=registry
                ),
            )
        search_kwargs.setdefault("incremental", config.mode != "sequential")
        if registry is not None:
            search_kwargs.setdefault("metrics", registry)
        return cls(outer, **search_kwargs)

    def _search_assessor(self, master_seed: int | None) -> Assessor:
        """The assessor used inside one search run.

        With common random numbers enabled (the default), assessments share
        per-component random streams, so comparing the current plan with a
        neighbour is a low-variance paired comparison — without it, the
        per-swap reliability gain is often smaller than the sampling noise
        and the annealing walk stalls. The winning plan is re-assessed
        independently before being reported (see :meth:`search`).

        With ``incremental`` enabled (the default) the CRN assessor is an
        :class:`~repro.core.incremental.IncrementalAssessor`, which caches
        sampled states, closures, fault-tree results and routed plans
        across the move sequence — bit-identical to the from-scratch CRN
        path under the same master seed, so enabling it never changes a
        search trajectory, only its cost.

        When the outer assessor is an
        :class:`~repro.core.analytic.AnalyticAssessor`, the CRN assessor
        built here becomes its new sampling fallback (``with_inner``):
        exact screening results are RNG-free, so the exact memo is
        shared between the search and the outer confirmations, while
        intractable plans still ride the CRN machinery below.

        ``master_seed`` is drawn by :meth:`search` (and recorded in
        checkpoints so :meth:`resume` rebuilds the identical streams).
        """
        from repro.core.analytic import AnalyticAssessor

        if master_seed is None:
            return self.assessor
        outer = self.assessor
        analytic = outer if isinstance(outer, AnalyticAssessor) else None
        if analytic is not None:
            outer = analytic.inner
        config = AssessmentConfig(
            rounds=outer.rounds,
            engine=outer.engine,
            master_seed=master_seed,
            sample_full_infrastructure=outer.sample_full_infrastructure,
            kernel=getattr(getattr(outer, "config", None), "kernel", False),
            metrics=self.metrics,
        )
        if self.incremental:
            from repro.core.incremental import IncrementalAssessor

            crn = IncrementalAssessor.from_config(
                outer.topology,
                outer.dependency_model,
                config.with_updates(mode="incremental"),
            )
        else:
            crn = ReliabilityAssessor.from_config(
                outer.topology,
                outer.dependency_model,
                config.with_updates(
                    sampler=CommonRandomDaggerSampler(master_seed), rng=self.rng
                ),
            )
        if analytic is not None:
            return analytic.with_inner(crn)
        return crn

    # ------------------------------------------------------------------

    def search(
        self, spec: SearchSpec, initial_plan: DeploymentPlan | None = None
    ) -> SearchResult:
        """Run the 6-step loop and return the outcome."""
        deadline = Deadline(spec.max_seconds, clock=self._clock)
        schedule = self.temperature_schedule or LinearTemperatureSchedule(
            spec.max_seconds
        )
        crn_master_seed = (
            int(self.rng.integers(0, 2**63)) if self.common_random_numbers else None
        )
        assessor = self._search_assessor(crn_master_seed)

        # Steps 1-2: initial plan and its assessment. An explicit initial
        # plan (incumbent re-search) is accepted even when it violates the
        # zone constraints — the proposal screen only admits moves that
        # repair violations, so the walk converges into the constrained
        # space instead of failing outright on a degraded incumbent.
        current_plan = initial_plan or DeploymentPlan.random(
            assessor.topology,
            spec.structure,
            rng=self.rng,
            forbid_shared_rack=spec.forbid_shared_rack,
            zone_constraints=spec.zone_constraints,
        )
        current = assessor.assess(current_plan, spec.structure)
        current_measure = self.objective.measure(current_plan, current)

        # Best-so-far tracking uses *independent* assessments: with many
        # noisy scores, "max of the sampled scores" systematically picks
        # winners whose luck does not replicate (winner's curse), so a
        # candidate only becomes the new best after a fresh assessment,
        # drawn independently of the one that nominated it, confirms it.
        best = self.assessor.assess(current_plan, spec.structure)
        state = SearchState(
            spec=spec,
            current_plan=current_plan,
            current=current,
            current_measure=current_measure,
            best_plan=current_plan,
            best=best,
            best_measure=self.objective.measure(current_plan, best),
            plans_assessed=2,
            batch_size=self.batch_size,
            crn_master_seed=crn_master_seed,
        )
        if self._satisfied(spec, current, current_measure):
            verified = self._verify_satisfaction(spec, current_plan, current)
            if verified is not None:
                return self._result(state, verified, True, deadline)

        return self._run(spec, state, assessor, deadline, schedule)

    def resume(
        self,
        source,
        max_seconds: float | None = None,
        max_iterations: int | None = None,
    ) -> SearchResult:
        """Continue a checkpointed search exactly where it stopped.

        ``source`` is a checkpoint file path, a decoded checkpoint dict,
        or a :class:`SearchState`. The search and assessor RNGs are
        restored from the checkpoint, so with the same seed and clock the
        resumed run retraces the trajectory the uninterrupted run would
        have taken. ``max_seconds``/``max_iterations`` optionally extend
        the budget of the resumed run (e.g. to continue a search that
        stopped on budget expiry).

        The :class:`DeploymentSearch` this is called on must be built
        against the same topology, dependency model, objective and round
        count as the original — the checkpoint records the annealing
        state, not the substrate.
        """
        from repro import serialization

        if isinstance(source, SearchState):
            state = source
        elif isinstance(source, dict):
            state = SearchState.from_dict(source)
        else:
            state = SearchState.from_dict(serialization.load(source))
        if state.search_rng_state is None or state.assessor_rng_state is None:
            raise ConfigurationError("checkpoint is missing RNG state")

        spec = state.spec
        overrides = {}
        if max_seconds is not None:
            overrides["max_seconds"] = max_seconds
        if max_iterations is not None:
            overrides["max_iterations"] = max_iterations
        if overrides:
            spec = dataclasses.replace(spec, **overrides)
            state.spec = spec

        self.rng.bit_generator.state = state.search_rng_state
        self.assessor.rng.bit_generator.state = state.assessor_rng_state
        assessor = self._search_assessor(state.crn_master_seed)
        deadline = Deadline(
            spec.max_seconds,
            clock=self._clock,
            elapsed_offset=state.elapsed_seconds,
        )
        schedule = self.temperature_schedule or LinearTemperatureSchedule(
            spec.max_seconds
        )
        return self._run(
            spec, state, assessor, deadline, schedule,
            first_elapsed=state.elapsed_seconds,
        )

    # ------------------------------------------------------------------

    def _run(
        self,
        spec: SearchSpec,
        state: SearchState,
        assessor: Assessor,
        deadline: Deadline,
        schedule,
        first_elapsed: float | None = None,
    ) -> SearchResult:
        """Steps 3-6, batch-first: evolve neighbours until satisfied or
        out of budget.

        Each temperature step proposes ``state.batch_size`` candidate
        moves from the incumbent, screens them (resource filter, then the
        move-keyed symmetry filter), scores every survivor in **one**
        :meth:`~repro.core.api.Assessor.score_plans` call, and processes
        the scored candidates in proposal order under the classic
        acceptance rule — the first accepted candidate wins the step and
        the rest of the batch is discarded unprocessed (every scored
        delta compares against the *pre-move* incumbent, so the policy is
        order-deterministic). RNG discipline, per step: the search RNG
        draws exactly the proposal draws (in proposal order), then one
        acceptance draw per processed candidate whose acceptance
        probability is below 1; the confirmation RNG draws once per
        best-screen pass. With ``batch_size=1`` every draw lands where
        the classic one-neighbour loop put it, so B=1 trajectories are
        bit-identical to the pre-batch implementation.

        The clock is read exactly once per loop iteration (at the top);
        that one reading drives the expiry check, the temperature, trace
        records and checkpoints. Checkpoint writes never read the clock.
        Both properties are what make a resumed run's trajectory
        bit-identical to an uninterrupted one under a deterministic
        test clock.
        """
        while True:
            if first_elapsed is not None:
                # The elapsed reading the interrupted run took at this
                # very loop top, replayed so the resumed trajectory sees
                # the same temperature (the Deadline constructor already
                # consumed the clock tick the original reading did).
                elapsed, first_elapsed = first_elapsed, None
            else:
                elapsed = deadline.elapsed()
            state.elapsed_seconds = elapsed

            if (
                self.checkpoint_path is not None
                and state.iterations > 0
                and state.iterations % self.checkpoint_every == 0
            ):
                self._write_checkpoint(state)
            if self.should_stop is not None and self.should_stop():
                if self.checkpoint_path is not None:
                    self._write_checkpoint(state)
                break
            if self.cancel is not None and self.cancel.cancelled:
                # Deadline/client cancel: stop between moves, persist the
                # state for a later resume, and fall through to report
                # the best-so-far (anytime search semantics).
                if self.checkpoint_path is not None:
                    self._write_checkpoint(state)
                break
            if elapsed >= deadline.budget_seconds:
                break
            if (
                spec.max_iterations is not None
                and state.iterations >= spec.max_iterations
            ):
                break
            state.iterations += 1
            temperature = schedule.temperature(elapsed, state.iterations - 1)

            # Step 3, batched: propose B moves from the incumbent (all
            # proposal draws happen here, in order), screening each as it
            # is drawn. `None` entries mark candidates the screens
            # dropped; `skipped[i]` records a symmetric drop for tracing.
            candidates: list[tuple[MoveDescriptor, DeploymentPlan] | None] = []
            skipped_symmetric: list[bool] = []
            for _ in range(state.batch_size):
                move = state.current_plan.propose_move(
                    assessor.topology,
                    rng=self.rng,
                    zone_constraints=spec.zone_constraints,
                )
                state.candidates_proposed += 1
                neighbor_plan = move.apply(state.current_plan)
                if self.resource_filter is not None and not self.resource_filter(
                    neighbor_plan
                ):
                    state.skipped_resources += 1
                    candidates.append(None)
                    skipped_symmetric.append(False)
                    continue
                if (
                    self._symmetry_filter is not None
                    and self._symmetry_filter.equivalent_move(
                        state.current_plan, move, neighbor_plan
                    )
                ):
                    # Symmetric to the current plan: same reliability,
                    # skip the assessment (Step 3's discard).
                    state.skipped_symmetric += 1
                    candidates.append(None)
                    skipped_symmetric.append(True)
                    continue
                candidates.append((move, neighbor_plan))
                skipped_symmetric.append(False)

            # Step 4, batched: one shared-CRN scoring call for every
            # survivor. Under CRN the results are bit-identical to
            # per-candidate assessments, batching only shares the work.
            survivors = [c[1] for c in candidates if c is not None]
            if survivors:
                scores = assessor.score_plans(survivors, spec.structure)
                state.batches_scored += 1
                state.plans_assessed += len(survivors)
            else:
                scores = []

            score_index = 0
            for candidate, was_symmetric in zip(candidates, skipped_symmetric):
                if candidate is None:
                    if was_symmetric and self.keep_trace:
                        state.trace.append(
                            SearchRecord(
                                iteration=state.iterations,
                                elapsed_seconds=elapsed,
                                temperature=temperature,
                                candidate_score=state.current.score,
                                current_score=state.current.score,
                                best_score=state.best.score,
                                accepted=False,
                                skipped_symmetric=True,
                            )
                        )
                    continue
                _, neighbor_plan = candidate
                neighbor = scores[score_index]
                score_index += 1
                neighbor_measure = self.objective.measure(neighbor_plan, neighbor)

                if self.objective.prefers(
                    neighbor_plan, neighbor, state.best_plan, state.best
                ):
                    # Cheap screen passed; confirm with independent
                    # sampling before dethroning the incumbent best.
                    confirmation = self.assessor.assess(
                        neighbor_plan, spec.structure
                    )
                    state.plans_assessed += 1
                    if self.objective.prefers(
                        neighbor_plan, confirmation, state.best_plan, state.best
                    ):
                        state.best_plan, state.best = neighbor_plan, confirmation
                        state.best_measure = self.objective.measure(
                            state.best_plan, state.best
                        )

                # Step 5: accept improvements, or worse plans
                # probabilistically — always against the pre-move
                # incumbent the whole batch was proposed from.
                delta = self.objective.delta(
                    state.current_plan, state.current, neighbor_plan, neighbor
                )
                accepted = accept_neighbor(delta, temperature, self.rng)
                if self.keep_trace:
                    state.trace.append(
                        SearchRecord(
                            iteration=state.iterations,
                            elapsed_seconds=elapsed,
                            temperature=temperature,
                            candidate_score=neighbor.score,
                            current_score=state.current.score,
                            best_score=state.best.score,
                            accepted=accepted,
                        )
                    )

                # Step 6: requirements met -> report the plan. Checked
                # before the incumbent moves so the comparison base stays
                # the pre-move incumbent for every processed candidate.
                satisfied_candidate = self._satisfied(
                    spec, neighbor, neighbor_measure
                )
                if accepted:
                    state.current_plan = neighbor_plan
                    state.current = neighbor
                    state.current_measure = neighbor_measure
                if satisfied_candidate:
                    verified = self._verify_satisfaction(
                        spec, neighbor_plan, neighbor
                    )
                    if verified is not None:
                        state.best_plan, state.best = neighbor_plan, verified
                        return self._result(state, verified, True, deadline)
                if accepted:
                    # First accepted candidate wins the temperature step;
                    # the rest of the batch is discarded unprocessed.
                    break

        # Budget exhausted (or stop requested): requirements not
        # fulfilled; report the best found (its assessment is already an
        # independent confirmation). The final checkpoint lets a caller
        # resume with a bigger budget.
        if self.checkpoint_path is not None:
            self._write_checkpoint(state)
        return self._result(state, state.best, False, deadline)

    # ------------------------------------------------------------------

    def _write_checkpoint(self, state: SearchState) -> None:
        """Serialize the loop state atomically. Reads no clocks."""
        from repro import serialization

        state.search_rng_state = self.rng.bit_generator.state
        state.assessor_rng_state = self.assessor.rng.bit_generator.state
        serialization.dump(state.to_dict(), self.checkpoint_path, checksum=True)

    def _verify_satisfaction(
        self, spec: SearchSpec, plan: DeploymentPlan, assessment: AssessmentResult
    ) -> AssessmentResult | None:
        """Confirm a satisfying plan with independent randomness.

        Under common random numbers, a score that crossed ``R_desired``
        may owe the crossing to the shared seed; an independent assessment
        must agree before the search declares success. Returns the
        independent assessment, or ``None`` if satisfaction did not hold
        up (the caller keeps searching). Without CRN the original
        assessment stands.
        """
        if not self.common_random_numbers:
            return assessment
        independent = self.assessor.assess(plan, spec.structure)
        measure = self.objective.measure(plan, independent)
        if self._satisfied(spec, independent, measure):
            return independent
        return None

    def _satisfied(
        self, spec: SearchSpec, assessment: AssessmentResult, measure: float
    ) -> bool:
        if assessment.score < spec.desired_reliability:
            return False
        if spec.desired_measure is not None and measure < spec.desired_measure:
            return False
        return True

    @staticmethod
    def _result(
        state: SearchState,
        assessment: AssessmentResult,
        satisfied: bool,
        deadline: Deadline,
    ) -> SearchResult:
        return SearchResult(
            best_plan=state.best_plan,
            best_assessment=assessment,
            satisfied=satisfied,
            elapsed_seconds=deadline.elapsed(),
            iterations=state.iterations,
            plans_assessed=state.plans_assessed,
            plans_skipped_symmetric=state.skipped_symmetric,
            trace=tuple(state.trace),
            candidates_proposed=state.candidates_proposed,
            batches_scored=state.batches_scored,
        )
