"""Quantitative reliability assessment of a deployment plan (§3.2).

Pipeline, per assessment:

1. Determine the *relevant closure*: the network elements the routing
   engine may read for the plan's hosts, plus every fault-tree dependency
   (power, cooling, software, ...) those elements reference.
2. Generate failure states for the closure across ``rounds`` rounds with
   the configured sampler (extended dagger sampling by default; §3.2.2).
   Components fail independently, so sampling only the closure draws from
   the same joint distribution over everything step 3-4 read. Setting
   ``sample_full_infrastructure=True`` instead samples every component of
   the data center, the literal Table-1 semantics (and what Fig. 7 times).
3. Reason over each element's fault tree to get its *effective* per-round
   failure state, and filter failed elements (§3.2.3).
4. Route and check: evaluate the application structure's connectivity
   requirements per round (§3.2.1, §3.2.4).
5. Reduce the per-round result list to a reliability score with variance
   and a rigorous 95 % confidence interval (Eqs. 1-3).
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterable, Sequence

import numpy as np

from repro.app.structure import ApplicationStructure
from repro.core.api import DEFAULT_ROUNDS, AssessmentConfig, reject_legacy_kwargs
from repro.core.evaluation import StructureEvaluator
from repro.core.plan import DeploymentPlan
from repro.core.result import AssessmentResult
from repro.faults.dependencies import DependencyModel
from repro.kernel import AssessmentKernel, kernel_supported
from repro.routing.base import (
    PackedRoundStates,
    ReachabilityEngine,
    RoundStates,
    engine_for,
)
from repro.sampling.base import Sampler
from repro.sampling.dagger import ExtendedDaggerSampler
from repro.sampling.statistics import estimate_from_results
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError
from repro.util.metrics import MetricsRegistry
from repro.util.rng import make_rng
from repro.util.timing import Stopwatch

__all__ = ["DEFAULT_ROUNDS", "ReliabilityAssessor"]


def _stage(metrics: MetricsRegistry | None, name: str):
    """Timer context for one pipeline stage; free when not profiling."""
    if metrics is None:
        return contextlib.nullcontext()
    return metrics.timer(name)


class _ZeroFill(dict):
    """Dense-state mapping that treats absent components as never failed."""

    def __init__(self, rounds: int):
        super().__init__()
        self._zeros = np.zeros(rounds, dtype=bool)
        self._zeros.flags.writeable = False

    def __missing__(self, key: str) -> np.ndarray:
        return self._zeros


class ReliabilityAssessor:
    """Assesses deployment plans on one topology + dependency model.

    Construct once per (topology, dependency model) and reuse across many
    plans — the annealing search does exactly that.
    """

    def __init__(
        self,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        config: AssessmentConfig | None = None,
        **legacy: Any,
    ):
        if legacy:
            reject_legacy_kwargs(legacy)
        config = config or AssessmentConfig()
        self.config = config
        self.topology = topology
        self.dependency_model = dependency_model or DependencyModel.empty(topology)
        if self.dependency_model.topology is not topology:
            raise ConfigurationError(
                "dependency model was built for a different topology"
            )
        self.sampler = config.sampler or ExtendedDaggerSampler()
        self.rounds = config.rounds
        self.engine = config.engine or engine_for(topology)
        self.rng = make_rng(config.rng)
        self.sample_full_infrastructure = config.sample_full_infrastructure
        self.metrics = config.registry()
        self._evaluator = StructureEvaluator(self.engine)
        self._all_probabilities = self.dependency_model.failure_probabilities()
        self._validated: set[tuple[DeploymentPlan, int]] = set()
        self._closures: dict[frozenset[str], tuple[set[str], set[str]]] = {}
        # The compiled kernel needs a packed-capable engine; generic
        # topologies keep the legacy interpreter (config.kernel is then a
        # no-op, which is the documented fallback).
        self.kernel: AssessmentKernel | None = (
            AssessmentKernel(topology, self.dependency_model)
            if config.kernel and kernel_supported(self.engine)
            else None
        )

    @classmethod
    def from_config(
        cls,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        config: AssessmentConfig | None = None,
    ) -> "ReliabilityAssessor":
        """The unified-API constructor (see :mod:`repro.core.api`)."""
        return cls(topology, dependency_model, config=config)

    # ------------------------------------------------------------------

    def refresh_probabilities(self) -> None:
        """Re-read failure probabilities from the topology and model.

        Call after ``override_probabilities`` (bathtub-curve updates or
        near-real-time condition changes, §2.1/§3.2.2).
        """
        self._all_probabilities = self.dependency_model.failure_probabilities()
        if self.kernel is not None:
            # Rebuild so the arena's probability table (and anything
            # compiled against it) cannot go stale; trees recompile
            # lazily on the next assessment.
            self.kernel = AssessmentKernel(self.topology, self.dependency_model)

    def _validate(self, plan: DeploymentPlan, structure: ApplicationStructure) -> None:
        """``plan.validate_against`` with a memo of already-valid pairs.

        Validation is a pure check over immutable plans, so repeated
        assessments of the same plan (estimator refinement, benchmarking,
        the search re-visiting a plateau) skip the graph lookups.
        """
        key = (plan, id(structure))
        if key in self._validated:
            return
        plan.validate_against(self.topology, structure)
        if len(self._validated) >= 4096:
            self._validated.clear()
        self._validated.add(key)

    def closure_for(self, plan: DeploymentPlan) -> tuple[set[str], set[str]]:
        """(subjects, sampled component ids) for a plan's assessment.

        Subjects are the hosts/switches whose fault trees get evaluated;
        the sampled set adds links and every dependency those trees read.
        The closure depends only on the plan's host set, so it is memoized
        per host set (neighbouring plans in a search walk share it);
        callers treat the returned sets as read-only.
        """
        key = frozenset(plan.hosts())
        cached = self._closures.get(key)
        if cached is not None:
            return cached
        elements = self.engine.relevant_elements(plan.hosts())
        subjects = {cid for cid in elements if cid in self.topology.graph}
        links = elements - subjects
        sampled = set(self.dependency_model.basic_events_for(subjects))
        sampled.update(links)
        if len(self._closures) >= 4096:
            self._closures.clear()
        self._closures[key] = (subjects, sampled)
        return subjects, sampled

    def assess(
        self,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        rounds: int | None = None,
        cancel=None,
    ) -> AssessmentResult:
        """Assess one plan against one application structure.

        ``cancel`` is an optional
        :class:`~repro.util.cancel.CancellationToken`: the pipeline polls
        it between stages (and forwards it into the sampler's chunk loop)
        and raises :class:`~repro.util.errors.OperationCancelled` when it
        fires — a single assessment holds no partial data worth keeping,
        so anytime behaviour lives in the layers above (the parallel
        runtime's portions, the service's chunked execution).
        """
        watch = Stopwatch()
        metrics = self.metrics
        rounds = rounds or self.rounds
        self._validate(plan, structure)

        if cancel is not None:
            cancel.check()
        with _stage(metrics, "closure"):
            subjects, sampled = self.closure_for(plan)
            if self.sample_full_infrastructure:
                # The one long-lived dict, not a copy: samplers only read
                # it, and passing the same object lets their per-layout
                # caches hit on identity.
                probabilities = self._all_probabilities
            else:
                # Sorted, not set order: the sampler draws per component in
                # mapping order, and set iteration varies with the process's
                # hash seed — which would make results differ across process
                # restarts with the same request seed.
                probabilities = {
                    cid: self._all_probabilities[cid] for cid in sorted(sampled)
                }

        if self.kernel is not None:
            per_round = self._assess_kernel(
                plan, structure, rounds, subjects, sampled, probabilities, cancel
            )
        else:
            with _stage(metrics, "sample"):
                batch = self.sampler.sample(
                    probabilities, rounds, self.rng, cancel=cancel
                )

            if cancel is not None:
                cancel.check()
            # Fault-tree reasoning: effective per-round failure per subject.
            with _stage(metrics, "faulttree"):
                dense = _ZeroFill(rounds)
                for cid, failed_rounds in batch.failed_rounds.items():
                    if cid in sampled:
                        states = np.zeros(rounds, dtype=bool)
                        states[failed_rounds] = True
                        dense[cid] = states

                failed: dict[str, np.ndarray] = {}
                for subject in subjects:
                    tree = self.dependency_model.tree_for(subject)
                    if all(event not in dense for event in tree.basic_events()):
                        continue  # nothing this subject depends on ever failed
                    effective = tree.evaluate(dense)
                    if effective.any():
                        failed[subject] = effective
                for link_cid in sampled - subjects:
                    if (
                        link_cid in dense
                        and link_cid not in self.dependency_model.trees
                    ):
                        if link_cid in self.topology.components:
                            failed[link_cid] = dense[link_cid]

            if cancel is not None:
                cancel.check()
            with _stage(metrics, "route_and_check"):
                round_states = RoundStates(rounds=rounds, failed=failed)
                per_round = self._evaluator.evaluate(round_states, plan, structure)
        with _stage(metrics, "estimate"):
            estimate = estimate_from_results(per_round)
        if metrics is not None:
            metrics.incr("assess/from_scratch")
            metrics.incr("sample/components", len(probabilities))
        return AssessmentResult(
            plan=plan,
            estimate=estimate,
            per_round=per_round,
            sampled_components=len(probabilities),
            elapsed_seconds=watch.elapsed(),
        )

    def _assess_kernel(
        self,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        rounds: int,
        subjects: set[str],
        sampled: set[str],
        probabilities: dict[str, float],
        cancel=None,
        values: dict[int, np.ndarray | None] | None = None,
        batch=None,
    ) -> np.ndarray:
        """Sample -> compiled forest -> packed route-and-check.

        Bit-identical to the legacy stages: the sampler fast paths draw
        the same uniforms in the same order, the compiled forest applies
        the same boolean formulas, and the packed engines AND/OR the same
        alive masks — only the storage layout differs. ``batch`` and
        ``values`` let :meth:`score_plans` share one sampled batch (and
        the node-value cache over it) across many plans.
        """
        metrics = self.metrics
        kernel = self.kernel
        if batch is None:
            with _stage(metrics, "sample"):
                batch = kernel.sample_packed(
                    self.sampler, probabilities, rounds, self.rng, cancel=cancel
                )

        if cancel is not None:
            cancel.check()
        with _stage(metrics, "faulttree"):
            failed = kernel.effective_states(subjects, sampled, batch, values)

        if cancel is not None:
            cancel.check()
        with _stage(metrics, "route_and_check"):
            round_states = PackedRoundStates(rounds=rounds, failed=failed)
            return self._evaluator.evaluate(round_states, plan, structure)

    def score_plans(
        self,
        plans: Sequence[DeploymentPlan],
        structure: ApplicationStructure,
        rounds: int | None = None,
        cancel=None,
    ) -> list[AssessmentResult]:
        """Score several plans against ONE shared sampled batch.

        The shared batch puts every plan under common random numbers, so
        score differences between the plans reflect only the components
        they do not share — the paired-comparison property the annealing
        search wants from candidate scoring. With the kernel enabled, one
        packed batch over the union closure is sampled once and the
        compiled forest's node-value cache is reused across all plans
        (neighbour plans share almost all subjects); without it, each
        plan is assessed independently — still valid scores, just without
        the shared-batch variance reduction or the shared work.

        With a :class:`~repro.sampling.dagger.CommonRandomDaggerSampler`
        the results are bit-identical to assessing each plan separately,
        because its per-component streams do not depend on what else is
        in the batch.
        """
        rounds = rounds or self.rounds
        if self.kernel is None or len(plans) < 2:
            # Also the single-plan route: score_plans([p]) must equal
            # [assess(p)] bit-for-bit on every backend, and assess's
            # sorted-closure sampling order differs from the arena order
            # the shared batch uses (visible to non-CRN samplers).
            return [
                self.assess(plan, structure, rounds=rounds, cancel=cancel)
                for plan in plans
            ]

        watch = Stopwatch()
        metrics = self.metrics
        kernel = self.kernel
        closures: list[tuple[set[str], set[str]]] = []
        union_sampled: set[str] = set()
        with _stage(metrics, "closure"):
            for plan in plans:
                plan.validate_against(self.topology, structure)
                subjects, sampled = self.closure_for(plan)
                closures.append((subjects, sampled))
                union_sampled |= sampled
            if self.sample_full_infrastructure:
                probabilities = self._all_probabilities
            else:
                # Deterministic arena order, independent of set iteration.
                probabilities = {
                    cid: self._all_probabilities[cid]
                    for cid in kernel.arena.ids
                    if cid in union_sampled
                }

        with _stage(metrics, "sample"):
            batch = kernel.sample_packed(
                self.sampler, probabilities, rounds, self.rng, cancel=cancel
            )

        values: dict[int, np.ndarray | None] = {}
        results = []
        for plan, (subjects, sampled) in zip(plans, closures):
            elapsed_before = watch.elapsed()
            per_round = self._assess_kernel(
                plan,
                structure,
                rounds,
                subjects,
                sampled,
                probabilities,
                cancel=cancel,
                values=values,
                batch=batch,
            )
            with _stage(metrics, "estimate"):
                estimate = estimate_from_results(per_round)
            if metrics is not None:
                metrics.incr("assess/shared_batch")
            results.append(
                AssessmentResult(
                    plan=plan,
                    estimate=estimate,
                    per_round=per_round,
                    sampled_components=len(sampled),
                    elapsed_seconds=watch.elapsed() - elapsed_before,
                )
            )
        if metrics is not None:
            metrics.incr("sample/components", len(probabilities))
        return results

    def assess_k_of_n(
        self, hosts, k: int, rounds: int | None = None
    ) -> AssessmentResult:
        """Convenience wrapper for the simple K-of-N scenario (§2.2)."""
        hosts = list(hosts)
        structure = ApplicationStructure.k_of_n(k, len(hosts))
        plan = DeploymentPlan.single_component(hosts, structure.components[0].name)
        return self.assess(plan, structure, rounds=rounds)

    def assess_to_ci(
        self,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        target_ci_width: float,
        pilot_rounds: int = 2_000,
        max_rounds: int = 2_000_000,
    ) -> AssessmentResult:
        """Assess until the 95 % CI width reaches ``target_ci_width``.

        Some developers want tighter error bounds than the default round
        count provides (§4.2.4). This runs a pilot assessment, inverts
        Eq. 3 to size the remaining work, and keeps extending in doubling
        batches (independent sampling rounds concatenate freely) until the
        target is met or ``max_rounds`` have been spent.
        """
        if target_ci_width <= 0:
            raise ConfigurationError(
                f"target CI width must be positive, got {target_ci_width}"
            )
        watch = Stopwatch()
        from repro.sampling.statistics import (
            estimate_from_results as _estimate,
            rounds_for_target_ci,
        )

        result = self.assess(plan, structure, rounds=min(pilot_rounds, max_rounds))
        chunks = [result.per_round]
        total = result.estimate.rounds
        sampled = result.sampled_components
        while (
            result.estimate.confidence_interval_width > target_ci_width
            and total < max_rounds
        ):
            variance_per_round = result.estimate.variance * total
            needed = rounds_for_target_ci(target_ci_width, variance_per_round)
            # Never shrink, never exceed the cap, and grow by at least 50%
            # per step so a slightly-off pilot variance cannot stall us.
            batch = min(max(needed - total, total // 2, 1), max_rounds - total)
            chunks.append(self.assess(plan, structure, rounds=batch).per_round)
            total += batch
            merged = np.concatenate(chunks)
            result = AssessmentResult(
                plan=plan,
                estimate=_estimate(merged),
                per_round=merged,
                sampled_components=sampled,
                elapsed_seconds=watch.elapsed(),
            )
        return result
