"""Quantitative reliability assessment of a deployment plan (§3.2).

Pipeline, per assessment:

1. Determine the *relevant closure*: the network elements the routing
   engine may read for the plan's hosts, plus every fault-tree dependency
   (power, cooling, software, ...) those elements reference.
2. Generate failure states for the closure across ``rounds`` rounds with
   the configured sampler (extended dagger sampling by default; §3.2.2).
   Components fail independently, so sampling only the closure draws from
   the same joint distribution over everything step 3-4 read. Setting
   ``sample_full_infrastructure=True`` instead samples every component of
   the data center, the literal Table-1 semantics (and what Fig. 7 times).
3. Reason over each element's fault tree to get its *effective* per-round
   failure state, and filter failed elements (§3.2.3).
4. Route and check: evaluate the application structure's connectivity
   requirements per round (§3.2.1, §3.2.4).
5. Reduce the per-round result list to a reliability score with variance
   and a rigorous 95 % confidence interval (Eqs. 1-3).
"""

from __future__ import annotations

import contextlib
from typing import Any

import numpy as np

from repro.app.structure import ApplicationStructure
from repro.core.api import DEFAULT_ROUNDS, AssessmentConfig, config_from_legacy_kwargs
from repro.core.evaluation import StructureEvaluator
from repro.core.plan import DeploymentPlan
from repro.core.result import AssessmentResult
from repro.faults.dependencies import DependencyModel
from repro.routing.base import ReachabilityEngine, RoundStates, engine_for
from repro.sampling.base import Sampler
from repro.sampling.dagger import ExtendedDaggerSampler
from repro.sampling.statistics import estimate_from_results
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError
from repro.util.metrics import MetricsRegistry
from repro.util.rng import make_rng
from repro.util.timing import Stopwatch

__all__ = ["DEFAULT_ROUNDS", "ReliabilityAssessor"]


def _stage(metrics: MetricsRegistry | None, name: str):
    """Timer context for one pipeline stage; free when not profiling."""
    if metrics is None:
        return contextlib.nullcontext()
    return metrics.timer(name)


class _ZeroFill(dict):
    """Dense-state mapping that treats absent components as never failed."""

    def __init__(self, rounds: int):
        super().__init__()
        self._zeros = np.zeros(rounds, dtype=bool)
        self._zeros.flags.writeable = False

    def __missing__(self, key: str) -> np.ndarray:
        return self._zeros


class ReliabilityAssessor:
    """Assesses deployment plans on one topology + dependency model.

    Construct once per (topology, dependency model) and reuse across many
    plans — the annealing search does exactly that.
    """

    def __init__(
        self,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        config: AssessmentConfig | None = None,
        **legacy: Any,
    ):
        if legacy:
            if config is not None:
                raise ConfigurationError(
                    "pass either an AssessmentConfig or legacy keywords, not both"
                )
            config = config_from_legacy_kwargs(**legacy)
        config = config or AssessmentConfig()
        self.config = config
        self.topology = topology
        self.dependency_model = dependency_model or DependencyModel.empty(topology)
        if self.dependency_model.topology is not topology:
            raise ConfigurationError(
                "dependency model was built for a different topology"
            )
        self.sampler = config.sampler or ExtendedDaggerSampler()
        self.rounds = config.rounds
        self.engine = config.engine or engine_for(topology)
        self.rng = make_rng(config.rng)
        self.sample_full_infrastructure = config.sample_full_infrastructure
        self.metrics = config.registry()
        self._evaluator = StructureEvaluator(self.engine)
        self._all_probabilities = self.dependency_model.failure_probabilities()

    @classmethod
    def from_config(
        cls,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        config: AssessmentConfig | None = None,
    ) -> "ReliabilityAssessor":
        """The unified-API constructor (see :mod:`repro.core.api`)."""
        return cls(topology, dependency_model, config=config)

    # ------------------------------------------------------------------

    def refresh_probabilities(self) -> None:
        """Re-read failure probabilities from the topology and model.

        Call after ``override_probabilities`` (bathtub-curve updates or
        near-real-time condition changes, §2.1/§3.2.2).
        """
        self._all_probabilities = self.dependency_model.failure_probabilities()

    def closure_for(self, plan: DeploymentPlan) -> tuple[set[str], set[str]]:
        """(subjects, sampled component ids) for a plan's assessment.

        Subjects are the hosts/switches whose fault trees get evaluated;
        the sampled set adds links and every dependency those trees read.
        """
        elements = self.engine.relevant_elements(plan.hosts())
        subjects = {cid for cid in elements if cid in self.topology.graph}
        links = elements - subjects
        sampled = set(self.dependency_model.basic_events_for(subjects))
        sampled.update(links)
        return subjects, sampled

    def assess(
        self,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        rounds: int | None = None,
        cancel=None,
    ) -> AssessmentResult:
        """Assess one plan against one application structure.

        ``cancel`` is an optional
        :class:`~repro.util.cancel.CancellationToken`: the pipeline polls
        it between stages (and forwards it into the sampler's chunk loop)
        and raises :class:`~repro.util.errors.OperationCancelled` when it
        fires — a single assessment holds no partial data worth keeping,
        so anytime behaviour lives in the layers above (the parallel
        runtime's portions, the service's chunked execution).
        """
        watch = Stopwatch()
        metrics = self.metrics
        rounds = rounds or self.rounds
        plan.validate_against(self.topology, structure)

        if cancel is not None:
            cancel.check()
        with _stage(metrics, "closure"):
            subjects, sampled = self.closure_for(plan)
            if self.sample_full_infrastructure:
                probabilities = dict(self._all_probabilities)
            else:
                probabilities = {cid: self._all_probabilities[cid] for cid in sampled}

        with _stage(metrics, "sample"):
            batch = self.sampler.sample(probabilities, rounds, self.rng, cancel=cancel)

        if cancel is not None:
            cancel.check()
        # Fault-tree reasoning: effective per-round failure of each subject.
        with _stage(metrics, "faulttree"):
            dense = _ZeroFill(rounds)
            for cid, failed_rounds in batch.failed_rounds.items():
                if cid in sampled:
                    states = np.zeros(rounds, dtype=bool)
                    states[failed_rounds] = True
                    dense[cid] = states

            failed: dict[str, np.ndarray] = {}
            for subject in subjects:
                tree = self.dependency_model.tree_for(subject)
                if all(event not in dense for event in tree.basic_events()):
                    continue  # nothing this subject depends on ever failed
                effective = tree.evaluate(dense)
                if effective.any():
                    failed[subject] = effective
            for link_cid in sampled - subjects:
                if link_cid in dense and link_cid not in self.dependency_model.trees:
                    if link_cid in self.topology.components:
                        failed[link_cid] = dense[link_cid]

        if cancel is not None:
            cancel.check()
        with _stage(metrics, "route_and_check"):
            round_states = RoundStates(rounds=rounds, failed=failed)
            per_round = self._evaluator.evaluate(round_states, plan, structure)
        with _stage(metrics, "estimate"):
            estimate = estimate_from_results(per_round)
        if metrics is not None:
            metrics.incr("assess/from_scratch")
            metrics.incr("sample/components", len(probabilities))
        return AssessmentResult(
            plan=plan,
            estimate=estimate,
            per_round=per_round,
            sampled_components=len(probabilities),
            elapsed_seconds=watch.elapsed(),
        )

    def assess_k_of_n(
        self, hosts, k: int, rounds: int | None = None
    ) -> AssessmentResult:
        """Convenience wrapper for the simple K-of-N scenario (§2.2)."""
        hosts = list(hosts)
        structure = ApplicationStructure.k_of_n(k, len(hosts))
        plan = DeploymentPlan.single_component(hosts, structure.components[0].name)
        return self.assess(plan, structure, rounds=rounds)

    def assess_to_ci(
        self,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        target_ci_width: float,
        pilot_rounds: int = 2_000,
        max_rounds: int = 2_000_000,
    ) -> AssessmentResult:
        """Assess until the 95 % CI width reaches ``target_ci_width``.

        Some developers want tighter error bounds than the default round
        count provides (§4.2.4). This runs a pilot assessment, inverts
        Eq. 3 to size the remaining work, and keeps extending in doubling
        batches (independent sampling rounds concatenate freely) until the
        target is met or ``max_rounds`` have been spent.
        """
        if target_ci_width <= 0:
            raise ConfigurationError(
                f"target CI width must be positive, got {target_ci_width}"
            )
        watch = Stopwatch()
        from repro.sampling.statistics import (
            estimate_from_results as _estimate,
            rounds_for_target_ci,
        )

        result = self.assess(plan, structure, rounds=min(pilot_rounds, max_rounds))
        chunks = [result.per_round]
        total = result.estimate.rounds
        sampled = result.sampled_components
        while (
            result.estimate.confidence_interval_width > target_ci_width
            and total < max_rounds
        ):
            variance_per_round = result.estimate.variance * total
            needed = rounds_for_target_ci(target_ci_width, variance_per_round)
            # Never shrink, never exceed the cap, and grow by at least 50%
            # per step so a slightly-off pilot variance cannot stall us.
            batch = min(max(needed - total, total // 2, 1), max_rounds - total)
            chunks.append(self.assess(plan, structure, rounds=batch).per_round)
            total += batch
            merged = np.concatenate(chunks)
            result = AssessmentResult(
                plan=plan,
                estimate=_estimate(merged),
                per_round=merged,
                sampled_components=sampled,
                elapsed_seconds=watch.elapsed(),
            )
        return result
