"""The analytic assessor: exact reliability where tractable, sampled elsewhere.

The third assessment backend (``AssessmentConfig(mode="analytic")``),
following the analytic-availability line of Bibartiu et al. and PCRAFT's
exact-when-tractable-else-sampled split (PAPERS.md). Instead of drawing
``rounds`` Monte Carlo samples, a plan's relevant closure is evaluated
over *every* joint failure state of its uncertain basic events:

1. The closure's uncertain events (``0 < p < 1``; links at probability 0
   and certain-failed components are folded out as constants) become the
   bits of a ``2**U`` state enumeration, laid out as bit-packed rows by
   :func:`repro.kernel.exact.enumeration_rows` — one synthetic "round"
   per state.
2. The compiled fault-tree forest and the packed route-and-check run
   **once** over the enumeration, exactly as they would over a sampled
   batch — shared power/cooling/control roots are handled by the
   enumeration itself (each shared event is one bit read by every tree
   referencing it, so the correlations of Fig. 5 are exact, not an
   independence approximation).
3. The per-state reliable/unreliable vector is weighted by each state's
   exact probability (:func:`~repro.kernel.exact.enumeration_weights`),
   giving the ground-truth reliability with a zero-width confidence
   interval (``estimate.exact``).

Tractability is a per-closure property: ``U`` grows with the plan's
hosts, pods and dependency fan-in, and beyond
``AssessmentConfig.analytic_state_bits`` the assessor *declines* —
loudly (one warning per reason, metrics counters) and gracefully (the
plan is handed to the wrapped sampling assessor, so callers always get a
valid estimate). Exact results are memoized per (plan, structure): they
are RNG-free, so a cache hit is always bit-identical to recomputation.

``score_plans`` implements the hybrid exact-screen/sampled-confirm batch
the search hot loop consumes: every candidate the exact path accepts is
screened analytically (no sampling noise, no winner's curse), and only
the declined remainder goes through the inner assessor's shared-CRN
batch. :class:`~repro.core.search.DeploymentSearch` wraps its CRN search
assessor the same way (see ``_search_assessor``), so annealing walks
screen exactly and confirm by cache hit where tractable.
"""

from __future__ import annotations

import logging
from typing import Any, Sequence

import numpy as np

from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig, reject_legacy_kwargs
from repro.core.evaluation import StructureEvaluator
from repro.core.plan import DeploymentPlan
from repro.core.result import AssessmentResult
from repro.faults.dependencies import DependencyModel
from repro.kernel import AssessmentKernel, kernel_supported
from repro.kernel.exact import ExactBudget, enumeration_rows, enumeration_weights
from repro.kernel.packed import packed_width
from repro.routing.base import PackedRoundStates
from repro.sampling.statistics import exact_estimate
from repro.topology.base import Topology
from repro.util.timing import Stopwatch

__all__ = ["AnalyticAssessor"]

logger = logging.getLogger(__name__)


def _structure_key(structure: ApplicationStructure) -> tuple:
    """Hashable identity of an application structure for the result cache."""
    return (
        tuple((spec.name, spec.instances) for spec in structure.components),
        tuple(
            (req.component, req.source, req.min_reachable)
            for req in structure.requirements
        ),
    )


class _ClosureStates:
    """The exact state enumeration of one relevant closure.

    Shared by every plan over the same host set: the packed per-element
    failure rows over all ``2**U`` states, the exact per-state weights,
    and one long-lived :class:`PackedRoundStates` so engine-side per-state
    caches stay warm across the plans that share the closure.
    """

    __slots__ = ("rounds", "states", "weights", "sampled_size")

    def __init__(
        self,
        rounds: int,
        states: PackedRoundStates,
        weights: np.ndarray,
        sampled_size: int,
    ):
        self.rounds = rounds
        self.states = states
        self.weights = weights
        self.sampled_size = sampled_size


class AnalyticAssessor:
    """Exact-where-tractable assessor wrapping a sampling fallback.

    Implements the full :class:`~repro.core.api.Assessor` protocol.
    ``inner`` is any sampling assessor (sequential, incremental, ...);
    plans whose closure fits the tractability budget are answered
    exactly and never touch it — crucially without consuming any of its
    randomness, so falling back for *some* plans leaves the inner
    assessor's RNG stream exactly where per-plan sampling would.
    """

    def __init__(
        self,
        inner,
        budget: ExactBudget | None = None,
        config: AssessmentConfig | None = None,
        **legacy: Any,
    ):
        if legacy:
            reject_legacy_kwargs(legacy)
        self.inner = inner
        self.config = config or getattr(inner, "config", None)
        if budget is None and self.config is not None:
            budget = ExactBudget(
                shared_bits=self.config.analytic_shared_bits,
                state_bits=self.config.analytic_state_bits,
            )
        self.budget = budget or ExactBudget()
        self.topology: Topology = inner.topology
        self.dependency_model: DependencyModel = inner.dependency_model
        self.rounds: int = inner.rounds
        self.engine = inner.engine
        self.sample_full_infrastructure = inner.sample_full_infrastructure
        self.metrics = inner.metrics
        self._evaluator = StructureEvaluator(self.engine)
        # The enumeration needs the packed pipeline end to end: compiled
        # forest rows in, bitwise route-and-check out. Engines without a
        # packed fast path (the generic per-round engine) get no exact
        # path at all — everything falls back, with one loud warning.
        self._packed = kernel_supported(self.engine)
        self.kernel: AssessmentKernel | None = None
        if self._packed:
            self.kernel = getattr(inner, "kernel", None) or AssessmentKernel(
                self.topology, self.dependency_model
            )
        self._warned: set[str] = set()
        self._closure_states: dict[frozenset[str], _ClosureStates | str] = {}
        self._results: dict[tuple, AssessmentResult] = {}
        self._validated: set[tuple] = set()
        if not self._packed:
            self._warn(
                "engine",
                f"reachability engine {type(self.engine).__name__} has no "
                "packed route-and-check; every assessment falls back to "
                "sampling",
            )

    @classmethod
    def from_config(
        cls,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        config: AssessmentConfig | None = None,
    ) -> "AnalyticAssessor":
        """The unified-API constructor (see :mod:`repro.core.api`).

        The sampling fallback is a sequential
        :class:`~repro.core.assessment.ReliabilityAssessor` built from
        the same config; the search swaps in a CRN assessor per run via
        :meth:`with_inner`.
        """
        from repro.core.assessment import ReliabilityAssessor

        config = config or AssessmentConfig(mode="analytic")
        inner = ReliabilityAssessor.from_config(
            topology, dependency_model, config.with_updates(mode="sequential")
        )
        return cls(inner, config=config)

    def with_inner(self, inner) -> "AnalyticAssessor":
        """A sibling assessor over a different sampling fallback.

        Exact state — closure enumerations, memoized exact results, the
        compiled kernel — is *shared* with this assessor: exact values
        are RNG-free, so they are valid under any inner sampler, and
        sharing lets a search's screening hits double as the outer
        assessor's confirmation hits.
        """
        clone = AnalyticAssessor(inner, budget=self.budget, config=self.config)
        if clone._packed:
            clone.kernel = self.kernel
        clone._closure_states = self._closure_states
        clone._results = self._results
        clone._warned = self._warned
        return clone

    # ------------------------------------------------------------------
    # Substrate plumbing (the Assessor attribute surface)
    # ------------------------------------------------------------------

    @property
    def rng(self):
        """The fallback assessor's generator (checkpointed by the search)."""
        return self.inner.rng

    def closure_for(self, plan: DeploymentPlan) -> tuple[set[str], set[str]]:
        """(subjects, sampled) for a plan — the inner assessor's memo."""
        return self.inner.closure_for(plan)

    def refresh_probabilities(self) -> None:
        """Re-read failure probabilities and drop every exact artifact.

        Exact results are pure functions of the probability table, so a
        probability change invalidates all of them at once.
        """
        self.inner.refresh_probabilities()
        self._closure_states.clear()
        self._results.clear()
        if self._packed:
            self.kernel = getattr(self.inner, "kernel", None) or AssessmentKernel(
                self.topology, self.dependency_model
            )

    # ------------------------------------------------------------------
    # Exact evaluation
    # ------------------------------------------------------------------

    def _warn(self, reason: str, detail: str) -> None:
        if self.metrics is not None:
            self.metrics.incr("analytic/declined")
        if reason not in self._warned:
            self._warned.add(reason)
            logger.warning(
                "analytic assessor declines (%s): %s; falling back to the "
                "sampling assessor",
                reason,
                detail,
            )

    def explain(self, plan: DeploymentPlan) -> str | None:
        """Why a plan's closure is intractable, or ``None`` if exact.

        Diagnostic surface for tests and operators; does all the closure
        analysis but none of the evaluation.
        """
        if not self._packed:
            return "no packed reachability engine"
        subjects, sampled = self.inner.closure_for(plan)
        entry = self._closure(subjects, sampled)
        return entry if isinstance(entry, str) else None

    def _closure(
        self, subjects: set[str], sampled: set[str]
    ) -> _ClosureStates | str:
        """The closure's exact enumeration, or a decline-reason string."""
        key = frozenset(subjects)
        cached = self._closure_states.get(key)
        if cached is not None:
            return cached
        kernel = self.kernel
        arena = kernel.arena
        probability_of = arena.probabilities
        index_of = arena.index_of

        # Deterministic event order: sorted component ids, exactly like
        # the sequential assessor's sorted-closure sampling order — the
        # bit assignment (and hence float summation order) is identical
        # across processes.
        uncertain: list[str] = []
        certain_failed: list[str] = []
        for cid in sorted(sampled):
            p = float(probability_of[index_of(cid)])
            if 0.0 < p < 1.0:
                uncertain.append(cid)
            elif p >= 1.0:
                certain_failed.append(cid)
        if len(uncertain) > self.budget.state_bits:
            reason = (
                f"closure has {len(uncertain)} uncertain basic events, "
                f"budget allows {self.budget.state_bits} "
                f"(2**{self.budget.state_bits} exact states)"
            )
            self._store_closure(key, reason)
            return reason

        bits = len(uncertain)
        rounds = 1 << bits
        rows = enumeration_rows(bits)
        width = packed_width(rounds)
        weights = enumeration_weights(
            [float(probability_of[index_of(cid)]) for cid in uncertain]
        )

        leaf_rows: dict[int, np.ndarray] = {
            index_of(cid): rows[i] for i, cid in enumerate(uncertain)
        }
        failed_row = np.full(width, 0xFF, dtype=np.uint8)
        failed_row.flags.writeable = False
        for cid in certain_failed:
            leaf_rows[index_of(cid)] = failed_row

        ordered_subjects = sorted(subjects)
        kernel.compile_subjects(ordered_subjects)
        order = kernel.forest.evaluation_order(ordered_subjects)
        effective = kernel.forest.evaluate(
            ordered_subjects, leaf_rows.get, order=order
        )
        failed: dict[str, np.ndarray] = {
            subject: row for subject, row in effective.items() if row is not None
        }
        # Raw elements (links and other tree-less components the engine
        # reads): their effective state is their own event's state.
        trees = self.dependency_model.trees
        components = self.topology.components
        for cid in sorted(sampled - subjects):
            if cid in trees or cid not in components:
                continue
            row = leaf_rows.get(index_of(cid))
            if row is not None:
                failed[cid] = row
        entry = _ClosureStates(
            rounds=rounds,
            states=PackedRoundStates(rounds=rounds, failed=failed),
            weights=weights,
            sampled_size=len(sampled),
        )
        self._store_closure(key, entry)
        return entry

    def _store_closure(
        self, key: frozenset[str], entry: _ClosureStates | str
    ) -> None:
        if len(self._closure_states) >= 1024:
            self._closure_states.clear()
        self._closure_states[key] = entry

    def _exact(
        self, plan: DeploymentPlan, structure: ApplicationStructure
    ) -> AssessmentResult | None:
        """The exact assessment, or ``None`` when the closure declines."""
        if not self._packed:
            if self.metrics is not None:
                self.metrics.incr("analytic/declined")
            return None
        key = (plan, _structure_key(structure))
        cached = self._results.get(key)
        if cached is not None:
            if self.metrics is not None:
                self.metrics.incr("analytic/exact_hit")
            return cached
        watch = Stopwatch()
        vkey = (plan, id(structure))
        if vkey not in self._validated:
            plan.validate_against(self.topology, structure)
            if len(self._validated) >= 4096:
                self._validated.clear()
            self._validated.add(vkey)
        subjects, sampled = self.inner.closure_for(plan)
        entry = self._closure(subjects, sampled)
        if isinstance(entry, str):
            self._warn("state-bits", entry)
            return None
        reliable = self._evaluator.evaluate(entry.states, plan, structure)
        score = float(np.dot(entry.weights, reliable))
        # The weights sum to 1 up to float rounding; keep the score a
        # probability under that last-ulp drift.
        score = min(1.0, max(0.0, score))
        result = AssessmentResult(
            plan=plan,
            estimate=exact_estimate(score),
            # No sampled rounds back an exact result; the enumerated
            # per-state outcomes are closure-shaped, not round-shaped,
            # so the result list L is empty by design.
            per_round=np.zeros(0, dtype=bool),
            sampled_components=entry.sampled_size,
            elapsed_seconds=watch.elapsed(),
        )
        if len(self._results) >= 8192:
            self._results.clear()
        self._results[key] = result
        if self.metrics is not None:
            self.metrics.incr("analytic/exact")
        return result

    # ------------------------------------------------------------------
    # Assessor protocol
    # ------------------------------------------------------------------

    def assess(
        self,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        rounds: int | None = None,
        cancel=None,
    ) -> AssessmentResult:
        """Exact assessment where tractable, inner sampling elsewhere.

        ``rounds`` only applies to the fallback: an exact result is the
        ground truth at any round count.
        """
        result = self._exact(plan, structure)
        if result is not None:
            return result
        if cancel is None:
            return self.inner.assess(plan, structure, rounds=rounds)
        return self.inner.assess(plan, structure, rounds=rounds, cancel=cancel)

    def score_plans(
        self,
        plans: Sequence[DeploymentPlan],
        structure: ApplicationStructure,
        rounds: int | None = None,
        cancel=None,
    ) -> list[AssessmentResult]:
        """Hybrid batch scoring: exact screen, sampled confirm.

        Tractable candidates are answered exactly; the declined
        remainder goes through the inner assessor's ``score_plans`` in
        one shared batch (under a CRN sampler that subset is
        bit-identical to per-plan assessment, so mixing exact and
        sampled entries never changes what either backend would have
        returned alone). Results come back in input order.
        """
        results: list[AssessmentResult | None] = [None] * len(plans)
        declined: list[int] = []
        for i, plan in enumerate(plans):
            exact = self._exact(plan, structure)
            if exact is not None:
                results[i] = exact
            else:
                declined.append(i)
        if declined:
            subset = [plans[i] for i in declined]
            if cancel is None:
                sampled = self.inner.score_plans(subset, structure, rounds=rounds)
            else:
                sampled = self.inner.score_plans(
                    subset, structure, rounds=rounds, cancel=cancel
                )
            for i, result in zip(declined, sampled):
                results[i] = result
        return results  # type: ignore[return-value]

    def assess_k_of_n(
        self, hosts, k: int, rounds: int | None = None
    ) -> AssessmentResult:
        """Convenience wrapper for the simple K-of-N scenario (§2.2)."""
        hosts = list(hosts)
        structure = ApplicationStructure.k_of_n(k, len(hosts))
        plan = DeploymentPlan.single_component(hosts, structure.components[0].name)
        return self.assess(plan, structure, rounds=rounds)

    def __repr__(self) -> str:
        return (
            f"<AnalyticAssessor budget={self.budget} over "
            f"{type(self.inner).__name__}>"
        )
