"""Incremental assessment engine for the search hot path (§3.3).

The annealing search spends essentially all of its time re-assessing
neighbour plans that differ from the current plan by a *single VM move*,
yet the from-scratch pipeline recomputes the relevant closure, resamples
every component and re-walks every fault tree each iteration. Under
common random numbers all of that work is a pure function of
``(component, master_seed, rounds)`` — independent of which plan is being
assessed — so it can be cached once and reused across every move:

* **Component-state cache** — each component's failed-round indices come
  from its private CRN stream (see
  :meth:`~repro.sampling.dagger.CommonRandomDaggerSampler.component_failed_rounds`),
  so a one-host move only samples the closure *delta*; every shared
  component's states are reused verbatim.
* **Closure memoization** — the relevant closure decomposes per host for
  every shipped engine (the union of single-host closures equals the
  joint closure; the generic engine's closure is the whole data center,
  which makes the union trivially exact), and fault-tree basic events are
  memoized per subject, so closure computation is an O(delta) set union.
* **Effective-state cache** — fault-tree reasoning per subject does not
  depend on the plan either; each subject's effective per-round failure
  vector is computed once and shared by every plan that touches it.
* **Route segment + per-host reachability caches** — all assessments
  share one :class:`~repro.routing.base.RoundStates`, so the engines'
  per-states path-segment caches persist across moves, and a caching
  proxy memoizes finished per-host external / per-pair vectors.
* **Plan-level result cache** — keyed by the plan's canonical key, plus
  (opt-in) the symmetry-canonical signature from
  :class:`~repro.core.transforms.SymmetryChecker`, so revisited or
  symmetry-equivalent plans cost a dictionary lookup.

**Correctness invariant (CRN equality).** Before the route-and-check for
a plan runs, every element of that plan's relevant closure has been
sampled and fault-tree-evaluated; cached entries are never mutated
afterwards (per-component streams are deterministic). A fault-free
incremental assessment is therefore *bit-identical* to a from-scratch
:class:`~repro.core.assessment.ReliabilityAssessor` using a
:class:`~repro.sampling.dagger.CommonRandomDaggerSampler` with the same
master seed and round count — the property the test suite asserts across
randomized move sequences.

Caches grow with the set of hosts the search has touched (a few KiB per
component at 10^4 rounds); :meth:`IncrementalAssessor.clear_caches`
resets everything, e.g. after ``override_probabilities`` style updates.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import Sequence

import numpy as np

from repro.app.structure import ApplicationStructure
from repro.core.api import AssessmentConfig
from repro.core.evaluation import StructureEvaluator
from repro.core.plan import DeploymentPlan
from repro.core.result import AssessmentResult, RuntimeMetadata
from repro.faults.dependencies import DependencyModel
from repro.kernel import AssessmentKernel, kernel_supported
from repro.routing.base import (
    PackedRoundStates,
    ReachabilityEngine,
    RoundStates,
    engine_for,
)
from repro.sampling.dagger import CommonRandomDaggerSampler
from repro.sampling.statistics import estimate_from_results
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError
from repro.util.metrics import MetricsRegistry
from repro.util.rng import make_rng
from repro.util.timing import Stopwatch


def _structure_key(structure: ApplicationStructure) -> tuple:
    """Hashable identity of an application structure for the plan cache."""
    return (
        tuple((spec.name, spec.instances) for spec in structure.components),
        tuple(
            (req.component, req.source, req.min_reachable)
            for req in structure.requirements
        ),
    )


class _CachingEngine(ReachabilityEngine):
    """Memoizes finished per-host / per-pair reachability vectors.

    Valid because both answers are a pure function of the shared failure
    states and the queried host(s) alone — per-host results do not depend
    on which other hosts share the call (all shipped engines compute them
    host-by-host) — and the shared states for any element a query reads
    are in place before the first query that reads them, and never change.
    Missing entries are delegated to the inner engine in one batch so the
    generic engine keeps its one-union-find-per-round amortization.
    """

    def __init__(self, inner: ReachabilityEngine, metrics: MetricsRegistry):
        super().__init__(inner.topology)
        self.inner = inner
        self.metrics = metrics
        self._external: dict[str, np.ndarray] = {}
        self._pairs: dict[tuple[str, str], np.ndarray] = {}

    def relevant_elements(self, hosts: Sequence[str]) -> set[str]:
        return self.inner.relevant_elements(hosts)

    def external_reachable(
        self, states: RoundStates, hosts: Sequence[str]
    ) -> dict[str, np.ndarray]:
        unique = list(dict.fromkeys(hosts))
        missing = [h for h in unique if h not in self._external]
        self.metrics.incr("route/host/hit", len(unique) - len(missing))
        self.metrics.incr("route/host/miss", len(missing))
        if missing:
            self._external.update(self.inner.external_reachable(states, missing))
        return {h: self._external[h] for h in unique}

    def pairwise_reachable(
        self, states: RoundStates, pairs: Sequence[tuple[str, str]]
    ) -> dict[tuple[str, str], np.ndarray]:
        unique = list(dict.fromkeys(pairs))
        missing = [p for p in unique if p not in self._pairs]
        self.metrics.incr("route/pair/hit", len(unique) - len(missing))
        self.metrics.incr("route/pair/miss", len(missing))
        if missing:
            self._pairs.update(self.inner.pairwise_reachable(states, missing))
        return {p: self._pairs[p] for p in unique}

    def clear(self) -> None:
        self._external.clear()
        self._pairs.clear()


class IncrementalAssessor:
    """Cached, move-incremental reliability assessment under CRN.

    Implements the same :class:`~repro.core.api.Assessor` protocol as the
    sequential and parallel assessors; construct via
    :meth:`from_config` / :func:`~repro.core.api.build_assessor` with
    ``mode="incremental"``. The round count and master seed are fixed for
    the assessor's lifetime — they define the sampling universe all the
    caches live in (use a fresh assessor, or :meth:`clear_caches` plus
    :meth:`reseed`, to change either).
    """

    def __init__(
        self,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        config: AssessmentConfig | None = None,
    ):
        config = config or AssessmentConfig(mode="incremental")
        self.config = config
        self.topology = topology
        self.dependency_model = dependency_model or DependencyModel.empty(topology)
        if self.dependency_model.topology is not topology:
            raise ConfigurationError(
                "dependency model was built for a different topology"
            )
        self.rounds = config.rounds
        self.rng = make_rng(config.rng)
        if config.sampler is None:
            master_seed = (
                config.master_seed
                if config.master_seed is not None
                else int(self.rng.integers(0, 2**63))
            )
            self.sampler = CommonRandomDaggerSampler(master_seed)
        elif isinstance(config.sampler, CommonRandomDaggerSampler):
            self.sampler = config.sampler
        else:
            raise ConfigurationError(
                "incremental assessment requires component-addressed common "
                "random numbers (CommonRandomDaggerSampler); got "
                f"{type(config.sampler).__name__}"
            )
        self.sample_full_infrastructure = config.sample_full_infrastructure
        self.reuse_symmetric = config.reuse_symmetric
        self.metrics = config.registry() or MetricsRegistry()
        self.engine = config.engine or engine_for(topology)
        self._caching_engine = _CachingEngine(self.engine, self.metrics)
        self._evaluator = StructureEvaluator(self._caching_engine)
        self._all_probabilities = self.dependency_model.failure_probabilities()

        # The shared sampling universe. `_effective` only ever gains
        # entries (and existing entries are never rewritten), so the one
        # long-lived RoundStates — and the engine path-segment caches that
        # hang off it — stay valid across every assessment.
        self._zeros = np.zeros(self.rounds, dtype=bool)
        self._zeros.flags.writeable = False
        self._host_closure: dict[str, frozenset[str]] = {}
        self._failed_rounds: dict[str, np.ndarray] = {}  # component samples
        self._dense: dict[str, np.ndarray] = {}  # dense view, failing comps
        self._effective: dict[str, np.ndarray] = {}  # post-fault-tree states
        self._known_subjects: set[str] = set()
        self._known_links: set[str] = set()
        self._plan_cache: dict[tuple, AssessmentResult] = {}
        self._signature_cache: dict[tuple, AssessmentResult] = {}
        self._symmetry = None  # built lazily when reuse_symmetric is on

        # Compiled-kernel universe: packed per-component rows and a
        # persistent node-value cache over the compiled forest. Valid for
        # the assessor's lifetime because the CRN streams (and hence
        # every node value) are pure functions of (master_seed,
        # component, rounds), and node ids only ever grow.
        self.kernel: AssessmentKernel | None = (
            AssessmentKernel(topology, self.dependency_model)
            if config.kernel and kernel_supported(self.engine)
            else None
        )
        self._packed_rows: dict[str, np.ndarray | None] = {}
        self._forest_values: dict[int, np.ndarray | None] = {}
        self._states = self._fresh_states()

    def _fresh_states(self) -> RoundStates:
        if self.kernel is not None:
            return PackedRoundStates(rounds=self.rounds, failed=self._effective)
        return RoundStates(rounds=self.rounds, failed=self._effective)

    @classmethod
    def from_config(
        cls,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        config: AssessmentConfig | None = None,
    ) -> "IncrementalAssessor":
        """The unified-API constructor (see :mod:`repro.core.api`)."""
        return cls(topology, dependency_model, config=config)

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------

    @property
    def master_seed(self) -> int:
        """The CRN master seed the whole cache universe is keyed by."""
        return self.sampler.master_seed

    def clear_caches(self) -> None:
        """Drop every cache (states, closures, plans, route vectors).

        Call after externally mutating failure probabilities or the
        dependency model; the next assessment rebuilds from scratch.
        """
        self._host_closure.clear()
        self._failed_rounds.clear()
        self._dense.clear()
        self._effective.clear()
        self._known_subjects.clear()
        self._known_links.clear()
        self._plan_cache.clear()
        self._signature_cache.clear()
        self._caching_engine.clear()
        self._packed_rows.clear()
        self._forest_values.clear()
        if self.kernel is not None:
            # Rebuild the arena/forest too: the probabilities (or even
            # the dependency trees) may have changed under us.
            self.kernel = AssessmentKernel(self.topology, self.dependency_model)
        # Fresh RoundStates: the engines' per-states segment caches are
        # attached to the old object and die with it.
        self._states = self._fresh_states()
        self._all_probabilities = self.dependency_model.failure_probabilities()

    def reseed(self, master_seed: int) -> None:
        """Move to a new CRN master seed, invalidating every cache."""
        self.sampler.reseed(master_seed)
        self.clear_caches()

    # ------------------------------------------------------------------
    # Closure (memoized per host)
    # ------------------------------------------------------------------

    def closure_for(self, plan: DeploymentPlan) -> tuple[set[str], set[str]]:
        """(subjects, sampled component ids) — same contract as the
        from-scratch assessor, assembled from per-host memo entries."""
        metrics = self.metrics
        elements: set[str] = set()
        for host in plan.hosts():
            cached = self._host_closure.get(host)
            if cached is None:
                metrics.incr("closure/host/miss")
                cached = frozenset(self.engine.relevant_elements([host]))
                self._host_closure[host] = cached
            else:
                metrics.incr("closure/host/hit")
            elements |= cached
        graph = self.topology.graph
        subjects = {cid for cid in elements if cid in graph}
        sampled = set(self.dependency_model.basic_events_for(subjects))
        sampled.update(elements - subjects)
        return subjects, sampled

    # ------------------------------------------------------------------
    # Component sampling and fault-tree reasoning (both cached)
    # ------------------------------------------------------------------

    def _failed_for(self, cid: str) -> np.ndarray:
        """Sampled failed-round indices for one component, cached."""
        failed = self._failed_rounds.get(cid)
        if failed is None:
            self.metrics.incr("sample/component/miss")
            failed = self.sampler.component_failed_rounds(
                cid, self._all_probabilities[cid], self.rounds
            )
            self._failed_rounds[cid] = failed
        else:
            self.metrics.incr("sample/component/hit")
        return failed

    def _dense_for(self, cid: str) -> np.ndarray:
        """Dense per-round failure vector (shared read-only zeros when the
        component never fails)."""
        failed = self._failed_rounds[cid]
        if not failed.size:
            return self._zeros
        dense = self._dense.get(cid)
        if dense is None:
            dense = np.zeros(self.rounds, dtype=bool)
            dense[failed] = True
            self._dense[cid] = dense
        return dense

    def _extend_universe(
        self, subjects: set[str], sampled: set[str], cancel=None
    ) -> None:
        """Fold a plan's closure into the shared sampling universe.

        Samples every not-yet-seen component, evaluates the fault tree of
        every not-yet-seen subject, and registers failing links — after
        which ``self._states`` covers everything this plan's
        route-and-check can read. Cancellation between components/subjects
        is safe: the caches only ever *gain* complete entries, so an
        aborted extension leaves a smaller but fully valid universe.
        """
        if self.kernel is not None:
            self._extend_universe_packed(subjects, sampled, cancel=cancel)
            return
        metrics = self.metrics
        model = self.dependency_model
        with metrics.timer("sample"):
            for index, cid in enumerate(sampled):
                if cancel is not None and index % 64 == 0:
                    cancel.check()
                self._failed_for(cid)

        with metrics.timer("faulttree"):
            if cancel is not None:
                cancel.check()
            for subject in subjects:
                if subject in self._known_subjects:
                    metrics.incr("faulttree/subject/hit")
                    continue
                metrics.incr("faulttree/subject/miss")
                self._known_subjects.add(subject)
                events = model.basic_events_of(subject)
                if all(not self._failed_rounds[e].size for e in events):
                    continue  # nothing this subject depends on ever failed
                dense = {e: self._dense_for(e) for e in events}
                effective = model.tree_for(subject).evaluate(dense)
                if effective.any():
                    self._effective[subject] = effective

            trees = model.trees
            components = self.topology.components
            for link_cid in sampled:
                if link_cid in subjects or link_cid in self._known_links:
                    continue
                self._known_links.add(link_cid)
                if (
                    self._failed_rounds[link_cid].size
                    and link_cid not in trees
                    and link_cid in components
                ):
                    self._effective[link_cid] = self._dense_for(link_cid)

    def _extend_universe_packed(
        self, subjects: set[str], sampled: set[str], cancel=None
    ) -> None:
        """Compiled-kernel twin of :meth:`_extend_universe`.

        Component states are packed rows from the same CRN streams (so
        the universe stays bit-identical to the dense one), fault-tree
        reasoning runs through the compiled forest with a persistent
        node-value cache, and the shared :class:`PackedRoundStates`
        gains packed effective rows.
        """
        metrics = self.metrics
        kernel = self.kernel
        rows = self._packed_rows
        with metrics.timer("sample"):
            for index, cid in enumerate(sampled):
                if cancel is not None and index % 64 == 0:
                    cancel.check()
                if cid in rows:
                    metrics.incr("sample/component/hit")
                    continue
                metrics.incr("sample/component/miss")
                rows[cid] = self.sampler.component_packed_row(
                    cid, self._all_probabilities[cid], self.rounds
                )

        with metrics.timer("faulttree"):
            if cancel is not None:
                cancel.check()
            new_subjects = [s for s in subjects if s not in self._known_subjects]
            metrics.incr("faulttree/subject/hit", len(subjects) - len(new_subjects))
            if new_subjects:
                metrics.incr("faulttree/subject/miss", len(new_subjects))
                self._known_subjects.update(new_subjects)
                kernel.compile_subjects(new_subjects)
                arena_ids = kernel.arena.ids
                effective = kernel.forest.evaluate(
                    new_subjects,
                    lambda op: rows[arena_ids[op]],
                    self._forest_values,
                )
                for subject, row in effective.items():
                    if row is not None:
                        self._effective[subject] = row

            trees = self.dependency_model.trees
            components = self.topology.components
            for link_cid in sampled:
                if link_cid in subjects or link_cid in self._known_links:
                    continue
                self._known_links.add(link_cid)
                row = rows[link_cid]
                if row is not None and link_cid not in trees and link_cid in components:
                    self._effective[link_cid] = row

    # ------------------------------------------------------------------
    # Assessment
    # ------------------------------------------------------------------

    def assess(
        self,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
        rounds: int | None = None,
        cancel=None,
    ) -> AssessmentResult:
        """Assess one plan, reusing every cacheable intermediate.

        Bit-identical to the from-scratch CRN pipeline with the same
        master seed; see the module docstring for the invariant.
        ``cancel`` is polled between stages (and inside the universe
        extension); a fired token raises
        :class:`~repro.util.errors.OperationCancelled` without corrupting
        any cache.
        """
        if rounds is not None and rounds != self.rounds:
            raise ConfigurationError(
                f"incremental assessment is fixed at {self.rounds} rounds "
                f"(its cache universe); got rounds={rounds}. Use a "
                "sequential assessor for ad-hoc round counts."
            )
        watch = Stopwatch()
        metrics = self.metrics
        plan.validate_against(self.topology, structure)

        cache_key = (plan.canonical_key(), _structure_key(structure))
        cached = self._plan_cache.get(cache_key)
        if cached is not None:
            metrics.incr("plan_cache/hit")
            return cached
        if self.reuse_symmetric:
            signature = self._plan_signature(plan, structure)
            symmetric = self._signature_cache.get(signature)
            if symmetric is not None:
                metrics.incr("plan_cache/symmetric_hit")
                result = dataclass_replace(symmetric, plan=plan)
                self._plan_cache[cache_key] = result
                return result
        metrics.incr("plan_cache/miss")

        if cancel is not None:
            cancel.check()
        with metrics.timer("closure"):
            subjects, sampled = self.closure_for(plan)
        self._extend_universe(subjects, sampled, cancel=cancel)

        if cancel is not None:
            cancel.check()
        with metrics.timer("route_and_check"):
            per_round = self._evaluator.evaluate(self._states, plan, structure)
        with metrics.timer("estimate"):
            estimate = estimate_from_results(per_round)

        metrics.incr("assess/incremental")
        if self.sample_full_infrastructure:
            sampled_components = len(self._all_probabilities)
        else:
            sampled_components = len(sampled)
        result = AssessmentResult(
            plan=plan,
            estimate=estimate,
            per_round=per_round,
            sampled_components=sampled_components,
            elapsed_seconds=watch.elapsed(),
            runtime=self._runtime_metadata(),
        )
        self._plan_cache[cache_key] = result
        if self.reuse_symmetric:
            self._signature_cache.setdefault(
                self._plan_signature(plan, structure), result
            )
        return result

    def score_plans(
        self,
        plans: Sequence[DeploymentPlan],
        structure: ApplicationStructure,
        rounds: int | None = None,
        cancel=None,
    ) -> list[AssessmentResult]:
        """Assess a batch of plans sharing one universe extension.

        The union of the plans' relevant closures is folded into the
        sampling universe in a single :meth:`_extend_universe` call —
        sampling and fault-tree reasoning for components shared by several
        candidates happen once instead of once per candidate — and each
        plan is then assessed against the (now warm) caches. Under CRN
        every cache entry is a pure function of ``(component,
        master_seed, rounds)``, independent of batch composition, so the
        results are bit-identical to per-plan :meth:`assess` calls in any
        order.
        """
        plans = list(plans)
        if not plans:
            return []
        uncached = [
            plan
            for plan in plans
            if (plan.canonical_key(), _structure_key(structure)) not in self._plan_cache
        ]
        if len(uncached) > 1:
            subjects: set[str] = set()
            sampled: set[str] = set()
            with self.metrics.timer("closure"):
                for plan in uncached:
                    plan_subjects, plan_sampled = self.closure_for(plan)
                    subjects |= plan_subjects
                    sampled |= plan_sampled
            self._extend_universe(subjects, sampled, cancel=cancel)
            self.metrics.incr("score_plans/batched", len(uncached))
        return [
            self.assess(plan, structure, rounds=rounds, cancel=cancel)
            for plan in plans
        ]

    def assess_k_of_n(self, hosts, k: int) -> AssessmentResult:
        """Convenience wrapper for the simple K-of-N scenario (§2.2)."""
        hosts = list(hosts)
        structure = ApplicationStructure.k_of_n(k, len(hosts))
        plan = DeploymentPlan.single_component(hosts, structure.components[0].name)
        return self.assess(plan, structure)

    # ------------------------------------------------------------------

    def _plan_signature(
        self, plan: DeploymentPlan, structure: ApplicationStructure
    ) -> tuple:
        """Symmetry-canonical cache key (reuses the search's pruning logic)."""
        if self._symmetry is None:
            from repro.core.transforms import SymmetryChecker

            self._symmetry = SymmetryChecker(self.topology, self.dependency_model)
        return (self._symmetry.signature(plan), _structure_key(structure))

    def _runtime_metadata(self) -> RuntimeMetadata | None:
        """Attach the metrics snapshot when profiling was requested."""
        if not (self.config.profile or self.config.metrics is not None):
            return None
        return RuntimeMetadata(
            backend="incremental",
            workers=0,
            portion_seeds=(),
            profile=self.metrics.flat(),
        )

    def __repr__(self) -> str:
        return (
            f"<IncrementalAssessor on {self.topology.name!r}: "
            f"{self.rounds} rounds, master_seed={self.master_seed}, "
            f"{len(self._failed_rounds)} components cached, "
            f"{len(self._plan_cache)} plans cached>"
        )
