"""reCloud's core: assessment, search, objectives, symmetry, plans."""

from repro.core.anneal import (
    LinearTemperatureSchedule,
    acceptance_probability,
    classic_delta,
    paper_delta,
)
from repro.core.api import (
    AssessmentConfig,
    Assessor,
    build_assessor,
)
from repro.core.assessment import DEFAULT_ROUNDS, ReliabilityAssessor
from repro.core.evaluation import StructureEvaluator
from repro.core.incremental import IncrementalAssessor
from repro.core.objectives import (
    BandwidthUtilityObjective,
    ClassicReliabilityObjective,
    CompositeObjective,
    Objective,
    ReliabilityObjective,
    WeightedObjective,
    WorkloadUtilityObjective,
)
from repro.core.plan import (
    DeploymentPlan,
    ZoneConstraints,
    enumerate_k_of_n_plans,
)
from repro.core.result import AssessmentResult, SearchRecord, SearchResult
from repro.core.risk import RiskAnalyzer, RiskEntry
from repro.core.search import DeploymentSearch, SearchSpec
from repro.core.transforms import SignatureCache, SymmetryChecker

__all__ = [
    "AssessmentConfig",
    "AssessmentResult",
    "Assessor",
    "BandwidthUtilityObjective",
    "ClassicReliabilityObjective",
    "CompositeObjective",
    "DEFAULT_ROUNDS",
    "DeploymentPlan",
    "DeploymentSearch",
    "IncrementalAssessor",
    "LinearTemperatureSchedule",
    "Objective",
    "ReliabilityAssessor",
    "ReliabilityObjective",
    "RiskAnalyzer",
    "RiskEntry",
    "SearchRecord",
    "SearchResult",
    "SearchSpec",
    "SignatureCache",
    "StructureEvaluator",
    "SymmetryChecker",
    "WeightedObjective",
    "WorkloadUtilityObjective",
    "ZoneConstraints",
    "acceptance_probability",
    "build_assessor",
    "classic_delta",
    "enumerate_k_of_n_plans",
    "paper_delta",
]
