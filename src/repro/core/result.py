"""Result records returned by assessment and search."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.plan import DeploymentPlan
from repro.sampling.statistics import ReliabilityEstimate


@dataclass(frozen=True)
class AssessmentResult:
    """Outcome of assessing one deployment plan (§3.2).

    Attributes:
        plan: The assessed plan.
        estimate: Reliability score with variance and 95 % CI (Eqs. 1-3).
        per_round: The paper's result list L as a boolean vector (True =
            plan was reliable in that round).
        sampled_components: How many components had failure states
            generated (the relevant closure, incl. dependencies).
        elapsed_seconds: Wall-clock time of the assessment.
    """

    plan: DeploymentPlan
    estimate: ReliabilityEstimate
    per_round: np.ndarray = field(repr=False)
    sampled_components: int
    elapsed_seconds: float

    @property
    def score(self) -> float:
        """Shorthand for the estimated reliability score R."""
        return self.estimate.score


@dataclass(frozen=True)
class SearchRecord:
    """One step of the annealing search (for traces and plots)."""

    iteration: int
    elapsed_seconds: float
    temperature: float
    candidate_score: float
    current_score: float
    best_score: float
    accepted: bool
    skipped_symmetric: bool = False


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a reliable-deployment search (§3.3).

    ``satisfied`` mirrors the provider protocol: True when a plan reaching
    the desired score was found within ``T_max``; otherwise the best plan
    found is still reported.
    """

    best_plan: DeploymentPlan
    best_assessment: AssessmentResult
    satisfied: bool
    elapsed_seconds: float
    iterations: int
    plans_assessed: int
    plans_skipped_symmetric: int
    trace: tuple[SearchRecord, ...] = field(default=(), repr=False)

    @property
    def best_score(self) -> float:
        return self.best_assessment.score

    @property
    def plans_considered(self) -> int:
        """Generated plans, including those discarded via symmetry (§4.2.2)."""
        return self.plans_assessed + self.plans_skipped_symmetric
