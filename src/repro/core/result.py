"""Result records returned by assessment and search."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.plan import DeploymentPlan
from repro.sampling.statistics import ReliabilityEstimate


@dataclass(frozen=True)
class PortionFailure:
    """One failed attempt at one portion inside the parallel runtime.

    Attributes:
        portion: Index of the portion within the assessment.
        attempt: Zero-based attempt number that failed.
        kind: ``"crash"`` (worker process died), ``"timeout"`` (portion
            exceeded its per-portion deadline) or ``"error"`` (the worker
            raised an exception).
        message: Human-readable description of the failure.
    """

    portion: int
    attempt: int
    kind: str
    message: str


@dataclass(frozen=True)
class RuntimeMetadata:
    """Execution metadata aggregated by the parallel runtime (§3.2.1).

    Replaces the old ``sampled_components=-1`` sentinel: the master now
    reports how the work was actually distributed and what went wrong.

    Attributes:
        backend: ``"process"`` or ``"inline"``.
        workers: Worker processes the assessor was configured with.
        portion_seeds: The per-portion stream seeds that produced the
            estimate (the seeds actually used, including retry reseeds).
        retries: Total retry attempts across all portions.
        pool_restarts: Times the worker pool was torn down and restarted.
        recovered_inline: Portions recovered by the master running them
            inline after worker retries were exhausted.
        dropped_portions: Portions dropped in ``partial_ok`` mode, or cut
            off by cancellation.
        dropped_rounds: Sampling rounds lost with the dropped portions.
        cancelled: The assessment was stopped early by a cancellation
            token (deadline or client cancel); the estimate is an
            *anytime* result built from the portions completed by then.
        recovered: The request was replayed from the service's
            write-ahead journal after a crash; this execution is a
            re-run of work accepted by a previous process.
        failures: Per-attempt failure records (crash/timeout/error/
            cancelled).
        profile: Flattened metrics snapshot (stage timers and cache
            counters) when the assessment ran with profiling enabled;
            see :meth:`repro.util.metrics.MetricsRegistry.flat`.
    """

    backend: str
    workers: int
    portion_seeds: tuple[int, ...]
    retries: int = 0
    pool_restarts: int = 0
    recovered_inline: int = 0
    dropped_portions: int = 0
    dropped_rounds: int = 0
    cancelled: bool = False
    recovered: bool = False
    failures: tuple[PortionFailure, ...] = ()
    profile: tuple[tuple[str, float], ...] | None = None

    @property
    def portions(self) -> int:
        return len(self.portion_seeds)

    @property
    def degraded(self) -> bool:
        """Whether any requested rounds are missing from the estimate."""
        return self.dropped_portions > 0


@dataclass(frozen=True)
class AssessmentResult:
    """Outcome of assessing one deployment plan (§3.2).

    Attributes:
        plan: The assessed plan.
        estimate: Reliability score with variance and 95 % CI (Eqs. 1-3).
        per_round: The paper's result list L as a boolean vector (True =
            plan was reliable in that round).
        sampled_components: How many components had failure states
            generated (the relevant closure, incl. dependencies).
        elapsed_seconds: Wall-clock time of the assessment.
        runtime: Parallel-execution metadata when the assessment was run
            by the :class:`~repro.runtime.mapreduce.ParallelAssessor`
            (portion seeds, retry/degradation counters); ``None`` for a
            plain sequential assessment.
    """

    plan: DeploymentPlan
    estimate: ReliabilityEstimate
    per_round: np.ndarray = field(repr=False)
    sampled_components: int
    elapsed_seconds: float
    runtime: RuntimeMetadata | None = None

    @property
    def score(self) -> float:
        """Shorthand for the estimated reliability score R."""
        return self.estimate.score

    @property
    def degraded(self) -> bool:
        """True when the estimate is built from fewer rounds than asked
        for because portions were dropped under ``partial_ok``."""
        return self.runtime is not None and self.runtime.degraded

    def to_dict(self) -> dict:
        """Stable, versioned JSON-ready encoding (schema in serialization.py).

        The raw per-round list is excluded by design — it is reproducible
        from the recorded seeds and would dominate the artifact size.
        """
        from repro import serialization

        return serialization.assessment_to_dict(self)

    @classmethod
    def from_dict(cls, document: dict) -> "AssessmentResult":
        """Decode an encoded assessment (``per_round`` comes back empty)."""
        from repro import serialization

        return serialization.assessment_from_dict(document)


@dataclass(frozen=True)
class SearchRecord:
    """One step of the annealing search (for traces and plots)."""

    iteration: int
    elapsed_seconds: float
    temperature: float
    candidate_score: float
    current_score: float
    best_score: float
    accepted: bool
    skipped_symmetric: bool = False


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a reliable-deployment search (§3.3).

    ``satisfied`` mirrors the provider protocol: True when a plan reaching
    the desired score was found within ``T_max``; otherwise the best plan
    found is still reported.
    """

    best_plan: DeploymentPlan
    best_assessment: AssessmentResult
    satisfied: bool
    elapsed_seconds: float
    iterations: int
    plans_assessed: int
    plans_skipped_symmetric: int
    trace: tuple[SearchRecord, ...] = field(default=(), repr=False)
    #: Neighbour moves proposed, including screened-out candidates
    #: (== iterations when batch_size is 1 and nothing raises).
    candidates_proposed: int = 0
    #: ``score_plans`` calls the hot loop issued (one per temperature
    #: step that had at least one screening survivor).
    batches_scored: int = 0

    @property
    def best_score(self) -> float:
        return self.best_assessment.score

    @property
    def plans_considered(self) -> int:
        """Generated plans, including those discarded via symmetry (§4.2.2)."""
        return self.plans_assessed + self.plans_skipped_symmetric
