"""Simulated-annealing primitives tuned for reliability search (§3.3.2).

Two things distinguish reCloud's annealing from the classic recipe:

* **Δ amplifies order-of-magnitude reliability differences** (Eq. 5).
  The classic absolute difference treats R=0.999 vs R=0.99 as Δ=0.009,
  although the former is ten times more reliable; reCloud instead uses
  the log-ratio of failure odds, ``Δ = log10((1-R_neighbor)/(1-R_current))``,
  so that example yields Δ = 1 (one order of magnitude).
* **The temperature is the remaining fraction of the search budget**
  (Eq. 6): ``t = (T_max - T_elapsed) / T_max`` falls linearly from 1 to 0,
  making early iterations exploratory and late iterations greedy.

Acceptance of a worse neighbour follows Eq. 4: ``P = exp(-Δ / t)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.errors import ConfigurationError

#: Floor on failure odds (1 - R) when computing the log-ratio. An estimate
#: from n rounds cannot resolve odds below ~1/n anyway; the floor merely
#: keeps Δ finite when an assessment reports R = 1.0.
ODDS_FLOOR = 1e-9


def failure_odds(reliability: float, floor: float = ODDS_FLOOR) -> float:
    """``1 - R`` clamped away from zero."""
    if not 0.0 <= reliability <= 1.0:
        raise ConfigurationError(f"reliability must be in [0, 1], got {reliability}")
    return max(1.0 - reliability, floor)


def paper_delta(
    current_reliability: float,
    neighbor_reliability: float,
    floor: float = ODDS_FLOOR,
) -> float:
    """Eq. 5: Δ = log10 of the failure-odds ratio neighbour/current.

    Positive when the neighbour is *less* reliable than the current plan
    (the only case Eq. 4 consults), negative when it is more reliable.
    """
    return math.log10(
        failure_odds(neighbor_reliability, floor)
        / failure_odds(current_reliability, floor)
    )


def classic_delta(current_reliability: float, neighbor_reliability: float) -> float:
    """The classic absolute-difference Δ the paper argues against.

    Kept for the ablation benchmark comparing the two settings.
    """
    return current_reliability - neighbor_reliability


def acceptance_probability(delta: float, temperature: float) -> float:
    """Eq. 4: probability of accepting a worse neighbour.

    Improvements (``delta <= 0``) are always accepted. At zero temperature
    the search is greedy: only improvements pass.
    """
    if delta <= 0.0:
        return 1.0
    if temperature <= 0.0:
        return 0.0
    return math.exp(-delta / temperature)


def accept_neighbor(
    delta: float, temperature: float, rng: np.random.Generator
) -> bool:
    """Draw the accept/reject decision for a candidate neighbour."""
    probability = acceptance_probability(delta, temperature)
    if probability >= 1.0:
        return True
    return bool(rng.random() < probability)


class LinearTemperatureSchedule:
    """Eq. 6: t = (T_max - T_elapsed) / T_max, clamped to [0, 1]."""

    def __init__(self, max_seconds: float):
        if max_seconds <= 0:
            raise ConfigurationError(f"T_max must be positive, got {max_seconds}")
        self.max_seconds = float(max_seconds)

    def temperature(self, elapsed_seconds: float, moves: int = 0) -> float:
        remaining = 1.0 - elapsed_seconds / self.max_seconds
        return min(1.0, max(0.0, remaining))


class MoveBudgetTemperatureSchedule:
    """Eq. 6 over a move budget instead of a wall clock.

    ``t = (M_max - M_done) / M_max`` falls linearly from 1 to 0 as moves
    are consumed, so a fixed-seed search traces the *same* trajectory on
    any host — the wall clock never enters the acceptance rule. This is
    what benchmarks and reproducibility tests want; the seconds-based
    schedule stays the CLI default because the paper's budget is a time
    budget (§3.3.2).
    """

    def __init__(self, max_moves: int):
        if max_moves <= 0:
            raise ConfigurationError(f"move budget must be positive, got {max_moves}")
        self.max_moves = int(max_moves)

    def temperature(self, elapsed_seconds: float, moves: int = 0) -> float:
        remaining = 1.0 - moves / self.max_moves
        return min(1.0, max(0.0, remaining))
