"""Network transformations: symmetry-based plan equivalence (§3.3.1, [60]).

Data centers are built symmetric, and the annealing search exploits that:
when a neighbour plan is *equivalent* to the current plan — there is an
automorphism of the labelled infrastructure mapping one onto the other —
its reliability is identical and re-assessing it is wasted work.

Following the network-transformations idea of Plotkin et al. [60], a plan
is reduced to a small canonical *surgery graph* that captures everything
reliability can depend on:

* one node per instance, labelled with its component name;
* one node per distinct infrastructure "group" the instances touch — the
  host, its rack (edge switch), its pod, and every shared dependency in
  the host's fault tree — labelled with the group's symmetry class (from
  ``Topology.symmetry_class_of``) and its failure-probability class;
* membership edges between instances and their groups.

Two plans whose surgery graphs are isomorphic place their instances in
symmetric positions with identically-shared dependencies, so the entire
route-and-check distribution coincides. Isomorphism is decided via the
Weisfeiler-Lehman graph hash (exact on these small coloured membership
graphs in practice, and used as a conservative signature).

Probability classes quantise failure probabilities (§3.3.1: components of
the same type with *similar* probabilities are treated as one type;
components with very different probabilities become logically different
types). The quantisation step is configurable.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from itertools import permutations, product

import networkx as nx

from repro.core.plan import DeploymentPlan, MoveDescriptor
from repro.faults.dependencies import DependencyModel
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError


class SymmetryChecker:
    """Computes canonical signatures of deployment plans."""

    def __init__(
        self,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        probability_decimals: int = 2,
    ):
        if probability_decimals < 0:
            raise ConfigurationError(
                f"probability_decimals must be >= 0, got {probability_decimals}"
            )
        self.topology = topology
        self.dependency_model = dependency_model or DependencyModel.empty(topology)
        self.probability_decimals = probability_decimals

    # ------------------------------------------------------------------

    def probability_class(self, component_id: str) -> str:
        """Quantised failure-probability label of any component."""
        probability = self.dependency_model.component(component_id).failure_probability
        return f"{round(probability, self.probability_decimals):.{self.probability_decimals}f}"

    def _group_label(self, component_id: str) -> str:
        """Symmetry class + probability class of one infrastructure group."""
        if component_id in self.topology:
            symmetry = self.topology.symmetry_class_of(component_id)
        else:
            dependency = self.dependency_model.component(component_id)
            symmetry = dependency.component_type.value
        return f"{symmetry}|p{self.probability_class(component_id)}"

    def surgery_graph(self, plan: DeploymentPlan) -> nx.Graph:
        """The canonical membership graph described in the module docstring."""
        graph = nx.Graph()
        topo = self.topology
        for component, hosts in plan.placements:
            for index, host in enumerate(hosts):
                instance_node = ("instance", component, index)
                graph.add_node(instance_node, label=f"instance|{component}")
                groups = [host, topo.edge_switch_of(host)]
                pod_of = getattr(topo, "pod_of", None)
                if pod_of is not None and pod_of(host) is not None:
                    groups.append(f"pod:{pod_of(host)}")
                for event in self.dependency_model.tree_for(host).basic_events():
                    if event != host:
                        groups.append(event)
                for group in groups:
                    group_node = ("group", group)
                    if group.startswith("pod:"):
                        label = "pod"
                    else:
                        label = self._group_label(group)
                    graph.add_node(group_node, label=label)
                    graph.add_edge(instance_node, group_node)
        return graph

    def signature(self, plan: DeploymentPlan) -> str:
        """A string that is equal for symmetric plans.

        Weisfeiler-Lehman hash of the surgery graph; plans with different
        signatures are definitely inequivalent, plans with equal signatures
        are equivalent up to WL's (practically negligible on coloured
        membership graphs) collision rate.
        """
        graph = self.surgery_graph(plan)
        return nx.weisfeiler_lehman_graph_hash(graph, node_attr="label", iterations=3)

    def equivalent(self, plan_a: DeploymentPlan, plan_b: DeploymentPlan) -> bool:
        """Whether two plans are symmetric (same reliability by symmetry).

        Signature equality is confirmed with an exact isomorphism check —
        cheap on these small graphs — so a WL collision cannot cause a
        genuinely different plan to be skipped.
        """
        if plan_a.canonical_key() == plan_b.canonical_key():
            return True
        if self.signature(plan_a) != self.signature(plan_b):
            return False
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            self.surgery_graph(plan_a),
            self.surgery_graph(plan_b),
            node_match=lambda a, b: a["label"] == b["label"],
        )
        return matcher.is_isomorphic()


class BatchSymmetryFilter:
    """Move-keyed symmetry screening for the batched search hot loop.

    Profiling the annealing loop shows :meth:`SymmetryChecker.equivalent`
    dominating wall-clock time (~2/3): every check rebuilds two surgery
    graphs and runs two Weisfeiler-Lehman hashes, even though consecutive
    checks share the incumbent plan and each neighbour differs by exactly
    one host swap. This filter wraps a checker with two caches keyed by
    what actually changes between moves:

    * **Host-context labels.** For a single-host move ``A -> B``, the two
      surgery graphs differ only in the group nodes host ``A``/``B``
      contribute (the host itself, its edge switch, its pod, its shared
      fault-tree dependencies). A label-preserving isomorphism preserves
      the multiset over instances of (component label, neighbourhood
      label multiset); every unmoved instance contributes identically to
      both plans, so by multiset cancellation equivalence *requires* the
      sorted group-label multisets of ``A`` and ``B`` to coincide. Hosts
      with differing context labels therefore prove inequivalence without
      building a single graph — and in an asymmetric-failure-probability
      or multi-class topology that settles most moves. Labels depend only
      on the topology, so the cache persists across moves and batches.
    * **Exact certificates.** For plans with few instances the surgery
      graph is a tiny coloured bipartite incidence structure, and a
      *complete* isomorphism invariant is cheap to compute outright: the
      lexicographically minimal (group label, attached canonical instance
      positions) multiset over all label-preserving permutations of the
      instances. Two plans are equivalent **iff** their certificates are
      equal — no hashing, no VF2 — so the per-move check collapses to one
      certificate build (LRU-cached by ``plan.canonical_key()``, so the
      incumbent's certificate is computed once per incumbent, not once
      per candidate). When the permutation budget would blow up (many
      interchangeable instances of one component) the filter falls back
      to the checker's WL-signature + exact-isomorphism path; both paths
      decide exact graph isomorphism, so verdicts never depend on which
      one ran.
    * **Plan signatures.** The fallback's WL signatures are cached by
      ``plan.canonical_key()`` (bounded LRU), so checking B candidates
      against one incumbent hashes the incumbent once, not B times, and a
      re-visited incumbent costs nothing.

    The filter is deliberately *not* folded into :class:`SymmetryChecker`:
    the unwrapped checker remains the uncached reference implementation
    benchmarks measure the legacy loop against.
    """

    #: Maximum number of label-preserving instance permutations the exact
    #: certificate may enumerate; beyond it the WL + VF2 fallback runs.
    PERMUTATION_BUDGET = 720

    def __init__(self, checker: SymmetryChecker, max_signatures: int = 4096):
        if max_signatures < 1:
            raise ConfigurationError(
                f"max_signatures must be >= 1, got {max_signatures}"
            )
        self.checker = checker
        self.max_signatures = max_signatures
        self._host_labels: dict[str, tuple[str, ...]] = {}
        self._host_groups: dict[str, tuple[tuple[str, str], ...]] = {}
        self._signatures: OrderedDict[tuple, str] = OrderedDict()
        self._certificates: OrderedDict[tuple, tuple | None] = OrderedDict()
        self.prefilter_rejections = 0
        self.certificate_checks = 0
        self.full_checks = 0

    # ------------------------------------------------------------------

    def host_context_label(self, host: str) -> tuple[str, ...]:
        """Sorted multiset of group labels ``host`` contributes to the graph."""
        cached = self._host_labels.get(host)
        if cached is not None:
            return cached
        checker = self.checker
        topo = checker.topology
        labels = [
            checker._group_label(host),
            checker._group_label(topo.edge_switch_of(host)),
        ]
        pod_of = getattr(topo, "pod_of", None)
        if pod_of is not None and pod_of(host) is not None:
            labels.append("pod")
        for event in checker.dependency_model.tree_for(host).basic_events():
            if event != host:
                labels.append(checker._group_label(event))
        result = tuple(sorted(labels))
        self._host_labels[host] = result
        return result

    def _host_group_entries(self, host: str) -> tuple[tuple[str, str], ...]:
        """``(group id, group label)`` pairs ``host`` contributes, deduplicated.

        Exactly the group nodes :meth:`SymmetryChecker.surgery_graph`
        attaches to an instance on ``host`` (the host, its edge switch,
        its pod, its shared fault-tree dependencies) — ids preserve the
        sharing structure between instances, labels are the graph's node
        labels.
        """
        cached = self._host_groups.get(host)
        if cached is not None:
            return cached
        checker = self.checker
        topo = checker.topology
        entries: dict[str, str] = {
            host: checker._group_label(host),
        }
        edge = topo.edge_switch_of(host)
        entries.setdefault(edge, checker._group_label(edge))
        pod_of = getattr(topo, "pod_of", None)
        if pod_of is not None and pod_of(host) is not None:
            entries.setdefault(f"pod:{pod_of(host)}", "pod")
        for event in checker.dependency_model.tree_for(host).basic_events():
            if event != host:
                entries.setdefault(event, checker._group_label(event))
        result = tuple(entries.items())
        self._host_groups[host] = result
        return result

    def certificate(self, plan: DeploymentPlan) -> tuple | None:
        """Complete isomorphism invariant of the surgery graph, or ``None``.

        LRU-cached by canonical key. Two plans with certificates are
        equivalent iff the certificates are equal; ``None`` means the
        permutation budget was exceeded and the caller must fall back to
        the WL + exact-isomorphism path.
        """
        key = plan.canonical_key()
        if key in self._certificates:
            self._certificates.move_to_end(key)
            return self._certificates[key]
        certificate = self._compute_certificate(plan)
        self._certificates[key] = certificate
        if len(self._certificates) > self.max_signatures:
            self._certificates.popitem(last=False)
        return certificate

    def _compute_certificate(self, plan: DeploymentPlan) -> tuple | None:
        """Canonicalise the coloured instance-group incidence structure.

        The surgery graph is bipartite (instances x groups) and groups
        carry no identity beyond their label and attachment set, so the
        graph is determined up to isomorphism by the multiset of
        ``(group label, attached instances)`` pairs modulo a
        label-preserving permutation of the instances. The certificate is
        that multiset under canonical instance numbering, minimised over
        every permutation that preserves each instance's refinement class
        (component + sorted adjacent-group labels) — any isomorphism
        preserves those classes, so restricting the search loses nothing.
        """
        attachments: dict[str, list[int]] = {}
        group_labels: dict[str, str] = {}
        instance_entries: list[tuple[str, tuple[tuple[str, str], ...]]] = []
        index = 0
        for component, hosts in plan.placements:
            for host in hosts:
                entries = self._host_group_entries(host)
                for group_id, label in entries:
                    group_labels[group_id] = label
                    attachments.setdefault(group_id, []).append(index)
                instance_entries.append((component, entries))
                index += 1

        # Groups attached to one instance carry no sharing structure, so
        # they are regrouped into a per-instance private-label multiset
        # (a faithful re-encoding of the incidence); only genuinely
        # shared groups need per-permutation attachment canonicalisation.
        # Classes refine on component + the sorted (label, degree)
        # profile — both isomorphism invariants, and degree splits
        # instances apart by how they share, shrinking the permutation
        # search.
        shared = [
            (group_labels[group_id], tuple(attached))
            for group_id, attached in attachments.items()
            if len(attached) > 1
        ]
        private_labels: list[tuple[str, ...]] = []
        refinements: list[tuple] = []
        for component, entries in instance_entries:
            private: list[str] = []
            profile: list[tuple[str, int]] = []
            for group_id, label in entries:
                degree = len(attachments[group_id])
                profile.append((label, degree))
                if degree == 1:
                    private.append(label)
            private_labels.append(tuple(sorted(private)))
            refinements.append((component, tuple(sorted(profile))))

        classes: dict[tuple, list[int]] = {}
        for instance, refinement in enumerate(refinements):
            classes.setdefault(refinement, []).append(instance)
        budget = 1
        for members in classes.values():
            budget *= math.factorial(len(members))
            if budget > self.PERMUTATION_BUDGET:
                return None

        # Canonical positions are assigned per refinement class (classes
        # sorted by their key), so isomorphic plans agree on which
        # positions each class occupies even when their instances were
        # enumerated in different orders.
        ordered = sorted(classes.items())
        class_shape = tuple((key, len(members)) for key, members in ordered)
        class_slots: list[tuple[list[int], tuple[int, ...]]] = []
        base = 0
        for _, members in ordered:
            class_slots.append((members, tuple(range(base, base + len(members)))))
            base += len(members)

        count = index
        best: tuple | None = None
        for combo in product(
            *(permutations(slots) for _, slots in class_slots)
        ):
            mapping = [0] * count
            for (members, _), permuted in zip(class_slots, combo):
                for instance, position in zip(members, permuted):
                    mapping[instance] = position
            candidate = (
                tuple(
                    sorted(
                        (mapping[i], private_labels[i]) for i in range(count)
                    )
                ),
                tuple(
                    sorted(
                        (label, tuple(sorted(mapping[i] for i in attached)))
                        for label, attached in shared
                    )
                ),
            )
            if best is None or candidate < best:
                best = candidate
        return (class_shape, best)

    def signature(self, plan: DeploymentPlan) -> str:
        """WL signature of ``plan``, LRU-cached by canonical key."""
        key = plan.canonical_key()
        cached = self._signatures.get(key)
        if cached is not None:
            self._signatures.move_to_end(key)
            return cached
        signature = self.checker.signature(plan)
        self._signatures[key] = signature
        if len(self._signatures) > self.max_signatures:
            self._signatures.popitem(last=False)
        return signature

    # ------------------------------------------------------------------

    def equivalent_move(
        self,
        incumbent: DeploymentPlan,
        move: MoveDescriptor,
        neighbor: DeploymentPlan,
    ) -> bool:
        """Whether applying ``move`` to ``incumbent`` yields a symmetric plan.

        Same verdicts as ``checker.equivalent(incumbent, neighbor)`` —
        the prefilter only ever proves *in*equivalence, and the full check
        confirms signature collisions with exact isomorphism exactly as
        the unwrapped checker does.
        """
        if self.host_context_label(move.old_host) != self.host_context_label(
            move.new_host
        ):
            self.prefilter_rejections += 1
            return False
        return self.equivalent(incumbent, neighbor)

    def equivalent(self, plan_a: DeploymentPlan, plan_b: DeploymentPlan) -> bool:
        """Cached variant of :meth:`SymmetryChecker.equivalent`.

        Both the certificate fast path and the WL + VF2 fallback decide
        exact isomorphism of the surgery graphs, so the verdict is always
        the one the unwrapped checker would return.
        """
        if plan_a.canonical_key() == plan_b.canonical_key():
            return True
        certificate_a = self.certificate(plan_a)
        if certificate_a is not None:
            certificate_b = self.certificate(plan_b)
            if certificate_b is not None:
                self.certificate_checks += 1
                return certificate_a == certificate_b
        if self.signature(plan_a) != self.signature(plan_b):
            return False
        self.full_checks += 1
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            self.checker.surgery_graph(plan_a),
            self.checker.surgery_graph(plan_b),
            node_match=lambda a, b: a["label"] == b["label"],
        )
        return matcher.is_isomorphic()


class SignatureCache:
    """Score cache keyed by plan signature.

    Beyond skipping neighbours symmetric to the *current* plan (the
    paper's Step 3), the search can reuse the assessed score of any
    previously-seen symmetric plan instead of re-assessing it.
    """

    def __init__(self, checker: SymmetryChecker):
        self.checker = checker
        self._scores: dict[str, float] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, plan: DeploymentPlan) -> float | None:
        """Cached score for a symmetric plan, if any."""
        signature = self.checker.signature(plan)
        score = self._scores.get(signature)
        if score is None:
            self.misses += 1
        else:
            self.hits += 1
        return score

    def record(self, plan: DeploymentPlan, score: float) -> None:
        self._scores[self.checker.signature(plan)] = score

    def __len__(self) -> int:
        return len(self._scores)
