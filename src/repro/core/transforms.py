"""Network transformations: symmetry-based plan equivalence (§3.3.1, [60]).

Data centers are built symmetric, and the annealing search exploits that:
when a neighbour plan is *equivalent* to the current plan — there is an
automorphism of the labelled infrastructure mapping one onto the other —
its reliability is identical and re-assessing it is wasted work.

Following the network-transformations idea of Plotkin et al. [60], a plan
is reduced to a small canonical *surgery graph* that captures everything
reliability can depend on:

* one node per instance, labelled with its component name;
* one node per distinct infrastructure "group" the instances touch — the
  host, its rack (edge switch), its pod, and every shared dependency in
  the host's fault tree — labelled with the group's symmetry class (from
  ``Topology.symmetry_class_of``) and its failure-probability class;
* membership edges between instances and their groups.

Two plans whose surgery graphs are isomorphic place their instances in
symmetric positions with identically-shared dependencies, so the entire
route-and-check distribution coincides. Isomorphism is decided via the
Weisfeiler-Lehman graph hash (exact on these small coloured membership
graphs in practice, and used as a conservative signature).

Probability classes quantise failure probabilities (§3.3.1: components of
the same type with *similar* probabilities are treated as one type;
components with very different probabilities become logically different
types). The quantisation step is configurable.
"""

from __future__ import annotations

import networkx as nx

from repro.core.plan import DeploymentPlan
from repro.faults.dependencies import DependencyModel
from repro.topology.base import Topology
from repro.util.errors import ConfigurationError


class SymmetryChecker:
    """Computes canonical signatures of deployment plans."""

    def __init__(
        self,
        topology: Topology,
        dependency_model: DependencyModel | None = None,
        probability_decimals: int = 2,
    ):
        if probability_decimals < 0:
            raise ConfigurationError(
                f"probability_decimals must be >= 0, got {probability_decimals}"
            )
        self.topology = topology
        self.dependency_model = dependency_model or DependencyModel.empty(topology)
        self.probability_decimals = probability_decimals

    # ------------------------------------------------------------------

    def probability_class(self, component_id: str) -> str:
        """Quantised failure-probability label of any component."""
        probability = self.dependency_model.component(component_id).failure_probability
        return f"{round(probability, self.probability_decimals):.{self.probability_decimals}f}"

    def _group_label(self, component_id: str) -> str:
        """Symmetry class + probability class of one infrastructure group."""
        if component_id in self.topology:
            symmetry = self.topology.symmetry_class_of(component_id)
        else:
            dependency = self.dependency_model.component(component_id)
            symmetry = dependency.component_type.value
        return f"{symmetry}|p{self.probability_class(component_id)}"

    def surgery_graph(self, plan: DeploymentPlan) -> nx.Graph:
        """The canonical membership graph described in the module docstring."""
        graph = nx.Graph()
        topo = self.topology
        for component, hosts in plan.placements:
            for index, host in enumerate(hosts):
                instance_node = ("instance", component, index)
                graph.add_node(instance_node, label=f"instance|{component}")
                groups = [host, topo.edge_switch_of(host)]
                pod_of = getattr(topo, "pod_of", None)
                if pod_of is not None and pod_of(host) is not None:
                    groups.append(f"pod:{pod_of(host)}")
                for event in self.dependency_model.tree_for(host).basic_events():
                    if event != host:
                        groups.append(event)
                for group in groups:
                    group_node = ("group", group)
                    if group.startswith("pod:"):
                        label = "pod"
                    else:
                        label = self._group_label(group)
                    graph.add_node(group_node, label=label)
                    graph.add_edge(instance_node, group_node)
        return graph

    def signature(self, plan: DeploymentPlan) -> str:
        """A string that is equal for symmetric plans.

        Weisfeiler-Lehman hash of the surgery graph; plans with different
        signatures are definitely inequivalent, plans with equal signatures
        are equivalent up to WL's (practically negligible on coloured
        membership graphs) collision rate.
        """
        graph = self.surgery_graph(plan)
        return nx.weisfeiler_lehman_graph_hash(graph, node_attr="label", iterations=3)

    def equivalent(self, plan_a: DeploymentPlan, plan_b: DeploymentPlan) -> bool:
        """Whether two plans are symmetric (same reliability by symmetry).

        Signature equality is confirmed with an exact isomorphism check —
        cheap on these small graphs — so a WL collision cannot cause a
        genuinely different plan to be skipped.
        """
        if plan_a.canonical_key() == plan_b.canonical_key():
            return True
        if self.signature(plan_a) != self.signature(plan_b):
            return False
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            self.surgery_graph(plan_a),
            self.surgery_graph(plan_b),
            node_match=lambda a, b: a["label"] == b["label"],
        )
        return matcher.is_isomorphic()


class SignatureCache:
    """Score cache keyed by plan signature.

    Beyond skipping neighbours symmetric to the *current* plan (the
    paper's Step 3), the search can reuse the assessed score of any
    previously-seen symmetric plan instead of re-assessing it.
    """

    def __init__(self, checker: SymmetryChecker):
        self.checker = checker
        self._scores: dict[str, float] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, plan: DeploymentPlan) -> float | None:
        """Cached score for a symmetric plan, if any."""
        signature = self.checker.signature(plan)
        score = self._scores.get(signature)
        if score is None:
            self.misses += 1
        else:
            self.hits += 1
        return score

    def record(self, plan: DeploymentPlan, score: float) -> None:
        self._scores[self.checker.signature(plan)] = score

    def __len__(self) -> int:
        return len(self._scores)
