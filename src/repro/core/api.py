"""The unified assessment API: one config, one protocol, one factory.

Historically the codebase grew three divergent ways to ask for an
assessment: the keyword sprawl of :class:`ReliabilityAssessor`, the
constructor arguments of :class:`~repro.runtime.mapreduce.ParallelAssessor`,
and the CLI's own flag plumbing. They drifted (different defaults,
different names for the same knob) and every new execution mode multiplied
the surface. This module collapses them:

* :class:`AssessmentConfig` — a single declarative dataclass holding every
  assessment knob, independent of the execution mode;
* :class:`Assessor` — the protocol every execution mode implements:
  ``assess(plan, structure, rounds=None)`` for one plan, the batch-first
  ``score_plans(plans, structure, rounds=None)`` the search hot loop
  consumes, plus the substrate attributes the search reads;
* :func:`build_assessor` — the factory that turns a topology + dependency
  model + config into the right assessor (sequential, parallel, or
  incremental).

The pre-``AssessmentConfig`` keyword forms (``ReliabilityAssessor(topo,
model, rounds=..., rng=...)``) went through a ``DeprecationWarning`` shim
for one release cycle and are now a hard :class:`TypeError` — see
:func:`reject_legacy_kwargs` for the migration hint.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from typing import Sequence

    from repro.app.structure import ApplicationStructure
    from repro.core.plan import DeploymentPlan
    from repro.core.result import AssessmentResult
    from repro.faults.dependencies import DependencyModel
    from repro.routing.base import ReachabilityEngine
    from repro.runtime.chaos import ChaosPolicy
    from repro.runtime.mapreduce import RetryPolicy
    from repro.sampling.base import Sampler
    from repro.topology.base import Topology

#: The paper's default assessment effort (§4.1).
DEFAULT_ROUNDS = 10_000

#: Execution modes :func:`build_assessor` can dispatch to.
MODES = ("sequential", "parallel", "incremental", "analytic")

#: Enumerating more than 2**26 exact states (~8 MiB packed per element
#: row, ~0.5 GiB weights) stops being "fast exact evaluation" and starts
#: being a memory hazard; budgets beyond this are a config error.
MAX_ANALYTIC_BITS = 26


@dataclass(frozen=True)
class AssessmentConfig:
    """Every knob of an assessment, independent of the execution mode.

    Attributes:
        rounds: Sampling rounds per assessment (Table 1 columns).
        sampler: Failure-state sampler; ``None`` picks the mode's default
            (extended dagger sequentially/parallel, common-random dagger
            incrementally).
        rng: Seed or generator for the assessment randomness.
        engine: Reachability engine override; ``None`` picks the best
            engine for the topology.
        sample_full_infrastructure: Sample every component of the data
            center instead of the relevant closure (literal Table-1
            semantics; what Fig. 7 times).
        mode: ``"sequential"`` (in-process), ``"parallel"`` (supervised
            worker pool), ``"incremental"`` (cached single-move deltas
            under common random numbers) or ``"analytic"`` (exact
            fault-tree evaluation where the closure fits the
            tractability budget, sampled fallback elsewhere; see
            :mod:`repro.core.analytic`).
        workers: Worker processes for the parallel mode.
        backend: ``"process"`` or ``"inline"`` for the parallel mode.
        retry_policy: Per-portion retry/timeout policy (parallel mode).
        partial_ok: Accept degraded partial estimates instead of inline
            recovery (parallel mode).
        chaos: Deterministic fault injection for tests (parallel mode).
        master_seed: Common-random-numbers master seed for the incremental
            mode; ``None`` derives one from ``rng``.
        reuse_symmetric: Let the incremental plan cache return the result
            of a *symmetry-equivalent* plan (same reliability by network
            transformation, but not bit-identical per-round states).
        kernel: Route assessments through the compiled kernel
            (:mod:`repro.kernel`): integer component arena, bit-packed
            round states, flattened fault-tree programs. Bit-identical to
            the legacy interpreter for the same config and seed;
            topologies without a packed-capable reachability engine fall
            back to the interpreter transparently.
        profile: Collect stage timings and cache counters; surfaced via
            the assessor's ``metrics`` registry and, on results, via
            ``RuntimeMetadata.profile``.
        metrics: Externally supplied registry to record into (implies
            nothing about ``profile``; passing one enables collection).
        analytic_shared_bits: Tractability budget for the exact
            *marginal* evaluator (:func:`repro.kernel.exact.compute_marginals`):
            the maximum number of shared basic events conditioned out
            (``2**bits`` conditioning states). Analytic mode only.
        analytic_state_bits: Tractability budget for exact *plan-level*
            evaluation: the maximum number of uncertain basic events in
            a plan's relevant closure (``2**bits`` enumerated joint
            states). Closures beyond the budget fall back to the
            sampling assessor. Analytic mode only.
    """

    rounds: int = DEFAULT_ROUNDS
    sampler: "Sampler | None" = None
    rng: "int | np.random.Generator | None" = None
    engine: "ReachabilityEngine | None" = None
    sample_full_infrastructure: bool = False
    mode: str = "sequential"
    workers: int = 2
    backend: str = "process"
    retry_policy: "RetryPolicy | None" = None
    partial_ok: bool = False
    chaos: "ChaosPolicy | None" = None
    master_seed: int | None = None
    reuse_symmetric: bool = False
    kernel: bool = False
    profile: bool = False
    metrics: MetricsRegistry | None = field(default=None, compare=False)
    analytic_shared_bits: int = 12
    analytic_state_bits: int = 20

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ConfigurationError(f"rounds must be positive, got {self.rounds}")
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown assessment mode {self.mode!r}; expected one of {MODES}"
            )

    # ------------------------------------------------------------------

    def validate(self, topology: "Topology | None" = None) -> None:
        """Full field-level validation at the API boundary.

        ``__post_init__`` guards the invariants that would crash
        immediately (positive rounds, known mode); this collects
        *everything* — including cross-field constraints and, when a
        topology is supplied, the physical sanity of its failure
        probabilities — and raises one
        :class:`~repro.util.errors.ValidationError` listing every
        problem.
        """
        from repro.util.errors import ValidationError

        errors: list[tuple[str, str]] = []
        if self.rounds < 1:
            errors.append(("rounds", f"must be >= 1, got {self.rounds}"))
        if self.mode not in MODES:
            errors.append(("mode", f"unknown mode {self.mode!r}"))
        if self.mode == "parallel":
            if self.workers < 1:
                errors.append(("workers", f"must be >= 1, got {self.workers}"))
            if self.backend not in ("process", "inline"):
                errors.append(("backend", f"unknown backend {self.backend!r}"))
        if self.master_seed is not None and self.master_seed < 0:
            errors.append(
                ("master_seed", f"must be non-negative, got {self.master_seed}")
            )
        if not 0 <= self.analytic_shared_bits <= MAX_ANALYTIC_BITS:
            errors.append(
                (
                    "analytic_shared_bits",
                    f"must be in [0, {MAX_ANALYTIC_BITS}], "
                    f"got {self.analytic_shared_bits}",
                )
            )
        if not 0 <= self.analytic_state_bits <= MAX_ANALYTIC_BITS:
            errors.append(
                (
                    "analytic_state_bits",
                    f"must be in [0, {MAX_ANALYTIC_BITS}], "
                    f"got {self.analytic_state_bits}",
                )
            )
        elif 0 <= self.analytic_shared_bits <= MAX_ANALYTIC_BITS and (
            self.analytic_shared_bits > self.analytic_state_bits
        ):
            errors.append(
                (
                    "analytic_shared_bits",
                    "conditioning budget cannot exceed the state budget "
                    f"({self.analytic_shared_bits} > {self.analytic_state_bits})",
                )
            )
        if topology is not None:
            bad = [
                (cid, p)
                for cid, p in topology.failure_probabilities().items()
                if not 0.0 <= p <= 1.0
            ]
            for cid, p in bad[:5]:
                errors.append(
                    (
                        "topology.failure_probabilities",
                        f"component {cid!r} has probability {p} outside [0, 1]",
                    )
                )
            if len(bad) > 5:
                errors.append(
                    (
                        "topology.failure_probabilities",
                        f"... and {len(bad) - 5} more components outside [0, 1]",
                    )
                )
        if errors:
            raise ValidationError(errors)

    def registry(self) -> MetricsRegistry | None:
        """The registry assessments should record into, or ``None``.

        An explicitly supplied ``metrics`` registry always wins;
        ``profile=True`` without one means "the assessor creates its own".
        """
        if self.metrics is not None:
            return self.metrics
        return MetricsRegistry() if self.profile else None

    def with_updates(self, **changes: Any) -> "AssessmentConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)


@runtime_checkable
class Assessor(Protocol):
    """What every execution mode exposes to the search, CLI and baselines."""

    topology: "Topology"
    dependency_model: "DependencyModel"
    rounds: int

    def assess(
        self,
        plan: "DeploymentPlan",
        structure: "ApplicationStructure",
        rounds: int | None = None,
    ) -> "AssessmentResult":
        """Assess one plan against one application structure."""
        ...

    def score_plans(
        self,
        plans: "Sequence[DeploymentPlan]",
        structure: "ApplicationStructure",
        rounds: int | None = None,
    ) -> "list[AssessmentResult]":
        """Assess a batch of plans against one application structure.

        Every backend must return exactly what per-plan :meth:`assess`
        calls would: the batch form is a performance contract (shared
        packed layouts, shared closure extension, one kernel dispatch),
        never a semantic one. Backends without a fast path delegate to
        :func:`score_plans_sequentially`.
        """
        ...


#: Legacy keyword -> config field, kept for the migration-hint message.
_LEGACY_FIELDS = frozenset(
    f.name for f in fields(AssessmentConfig) if f.name not in ("mode",)
)


def reject_legacy_kwargs(legacy: dict[str, Any]) -> None:
    """Raise the hard error that replaced the legacy-keyword shim.

    Pre-``AssessmentConfig`` keyword forms (``ReliabilityAssessor(topo,
    model, rounds=..., rng=...)``, ``ParallelAssessor(topo, model,
    workers=...)``, ``build_assessor(topo, model, rounds=...)``) spent one
    release cycle behind a ``DeprecationWarning``; they now fail loudly
    with a hint naming the config fields to move the keywords into.
    """
    known = sorted(set(legacy) & _LEGACY_FIELDS)
    unknown = sorted(set(legacy) - _LEGACY_FIELDS)
    parts = []
    if known:
        parts.append(
            "move "
            + ", ".join(f"{name}=..." for name in known)
            + " into AssessmentConfig and pass config=AssessmentConfig(...)"
        )
    if unknown:
        parts.append(f"unknown keyword(s) {unknown}")
    raise TypeError(
        "legacy assessment keywords are no longer accepted: "
        + "; ".join(parts)
        + ". Build an AssessmentConfig and use "
        "build_assessor()/from_config() instead."
    )


def score_plans_sequentially(
    assessor: Assessor,
    plans: "Sequence[DeploymentPlan]",
    structure: "ApplicationStructure",
    rounds: int | None = None,
) -> "list[AssessmentResult]":
    """The default ``score_plans``: one :meth:`~Assessor.assess` per plan.

    Correct for every backend by construction — batch scoring is defined
    as "exactly what the per-plan calls would return". Backends with a
    shared fast path (packed kernel batches, common closure extension)
    override ``score_plans`` and fall back here when the fast path does
    not apply.
    """
    return [assessor.assess(plan, structure, rounds=rounds) for plan in plans]


def build_assessor(
    topology: "Topology",
    dependency_model: "DependencyModel | None" = None,
    config: AssessmentConfig | None = None,
    **legacy: Any,
) -> Assessor:
    """Build the assessor a config describes.

    The one entry point the search, the CLI and the baselines share.
    """
    if legacy:
        reject_legacy_kwargs(legacy)
    config = config or AssessmentConfig()
    config.validate(topology)

    if config.mode == "parallel":
        from repro.runtime.mapreduce import ParallelAssessor

        return ParallelAssessor.from_config(topology, dependency_model, config)
    if config.mode == "incremental":
        from repro.core.incremental import IncrementalAssessor

        return IncrementalAssessor.from_config(topology, dependency_model, config)
    if config.mode == "analytic":
        from repro.core.analytic import AnalyticAssessor

        return AnalyticAssessor.from_config(topology, dependency_model, config)
    from repro.core.assessment import ReliabilityAssessor

    return ReliabilityAssessor.from_config(topology, dependency_model, config)
