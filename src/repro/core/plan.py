"""Deployment plans: which hosts each application instance lands on.

A deployment plan maps every instance of every application component to a
host of the data center (§2.2). Instances are placed on pairwise-distinct
hosts — the paper considers plans "without any instances on the same host"
(§3.3) — and the annealing search's neighbour move swaps exactly one host
for a fresh one (§3.3.1, Step 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.app.structure import ApplicationStructure, InstanceRef
from repro.topology.base import Topology
from repro.util.errors import (
    ConfigurationError,
    UnsatisfiableRequirements,
    ValidationError,
)
from repro.util.rng import make_rng


@dataclass(frozen=True)
class ZoneConstraints:
    """Zone-aware placement constraints for multi-zone deployments.

    Three constraint families, all cheap to screen (O(instances) with no
    graph work), matching the operator policies of cross-zone disaster
    recovery:

    * ``min_outside_primary``: at least K instances (across all
      components) must land on hosts *outside* ``primary_zone`` — the
      "K replicas survive a primary-zone outage" rule.
    * ``pinned_zones``: per-component allow-lists; every instance of a
      listed component must be placed in one of its allowed zones
      (data-residency pinning). Encoded as a tuple of
      ``(component, (zone, ...))`` pairs so the spec stays hashable.
    * ``spread_components``: components whose instances must not share a
      zone (per-component zone anti-affinity).

    Constraints evaluate against any topology exposing ``zone_of`` (see
    :class:`~repro.topology.zones.MultiZoneTopology`).
    """

    primary_zone: str | None = None
    min_outside_primary: int = 0
    pinned_zones: tuple[tuple[str, tuple[str, ...]], ...] = ()
    spread_components: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.min_outside_primary < 0:
            raise ConfigurationError(
                f"min_outside_primary must be >= 0, got {self.min_outside_primary}"
            )
        if self.min_outside_primary > 0 and self.primary_zone is None:
            raise ConfigurationError(
                "min_outside_primary requires a primary_zone"
            )
        # Normalise possibly-listy inputs into hashable tuples.
        object.__setattr__(
            self,
            "pinned_zones",
            tuple(
                (component, tuple(zones)) for component, zones in self.pinned_zones
            ),
        )
        object.__setattr__(self, "spread_components", tuple(self.spread_components))
        for component, zones in self.pinned_zones:
            if not zones:
                raise ConfigurationError(
                    f"component {component!r} is pinned to an empty zone list"
                )

    @classmethod
    def from_mapping(
        cls,
        primary_zone: str | None = None,
        min_outside_primary: int = 0,
        pinned_zones: Mapping[str, Sequence[str]] | None = None,
        spread_components: Sequence[str] = (),
    ) -> "ZoneConstraints":
        """Convenience constructor taking a plain dict of pinnings."""
        return cls(
            primary_zone=primary_zone,
            min_outside_primary=min_outside_primary,
            pinned_zones=tuple(
                (component, tuple(zones))
                for component, zones in (pinned_zones or {}).items()
            ),
            spread_components=tuple(spread_components),
        )

    @property
    def is_trivial(self) -> bool:
        """True when no constraint is actually imposed."""
        return (
            self.min_outside_primary == 0
            and not self.pinned_zones
            and not self.spread_components
        )

    def pinned_for(self, component: str) -> tuple[str, ...] | None:
        """The allowed zones of one component, or ``None`` if unpinned."""
        for name, zones in self.pinned_zones:
            if name == component:
                return zones
        return None

    # ------------------------------------------------------------------

    def violations(
        self, plan: "DeploymentPlan", topology: Topology
    ) -> list[tuple[str, str]]:
        """Every violated constraint as ``(field, message)`` pairs."""
        zone_of = getattr(topology, "zone_of", None)
        if zone_of is None:
            return [
                (
                    "topology",
                    f"topology {topology.name!r} has no zones; zone constraints "
                    "need a multi-zone topology",
                )
            ]
        errors: list[tuple[str, str]] = []
        if self.min_outside_primary > 0:
            outside = sum(
                1 for host in plan.hosts() if zone_of(host) != self.primary_zone
            )
            if outside < self.min_outside_primary:
                errors.append(
                    (
                        "min_outside_primary",
                        f"only {outside} instances outside primary zone "
                        f"{self.primary_zone!r}, need {self.min_outside_primary}",
                    )
                )
        for component, allowed in self.pinned_zones:
            try:
                hosts = plan.hosts_for(component)
            except ConfigurationError:
                continue  # structure mismatch is validate_against's job
            for host in hosts:
                zone = zone_of(host)
                if zone not in allowed:
                    errors.append(
                        (
                            f"pinned_zones.{component}",
                            f"instance on {host!r} is in zone {zone!r}, "
                            f"allowed zones are {list(allowed)}",
                        )
                    )
        for component in self.spread_components:
            try:
                hosts = plan.hosts_for(component)
            except ConfigurationError:
                continue
            zones = [zone_of(host) for host in hosts]
            duplicated = sorted({z for z in zones if zones.count(z) > 1})
            if duplicated:
                errors.append(
                    (
                        f"spread.{component}",
                        f"instances share zones {duplicated}",
                    )
                )
        return errors

    def satisfied_by(self, plan: "DeploymentPlan", topology: Topology) -> bool:
        """Whether a plan meets every constraint."""
        return not self.violations(plan, topology)

    def validate(self, plan: "DeploymentPlan", topology: Topology) -> None:
        """Raise a field-collecting :class:`ValidationError` on violations."""
        errors = self.violations(plan, topology)
        if errors:
            raise ValidationError(errors)


@dataclass(frozen=True)
class MoveDescriptor:
    """One annealing neighbour move: swap ``old_host`` for ``new_host``.

    The batched search proposes moves as descriptors instead of full plan
    copies: a descriptor is all the symmetry screen and the incremental
    caches need to reason about the move (two hosts), and materialising
    the neighbour plan is deferred until the move survives screening.
    """

    old_host: str
    new_host: str

    def apply(self, plan: "DeploymentPlan") -> "DeploymentPlan":
        """Materialise the neighbour plan this move describes."""
        return plan.replace_host(self.old_host, self.new_host)


@dataclass(frozen=True)
class DeploymentPlan:
    """An immutable assignment of component instances to hosts.

    ``placements`` holds, per component (in structure order), the tuple of
    host ids for that component's instances; index ``i`` hosts instance
    ``i``.
    """

    placements: tuple[tuple[str, tuple[str, ...]], ...]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_mapping(
        cls, component_hosts: Mapping[str, Sequence[str]]
    ) -> "DeploymentPlan":
        """Build a plan from {component -> ordered host list}."""
        placements = tuple(
            (component, tuple(hosts)) for component, hosts in component_hosts.items()
        )
        plan = cls(placements)
        plan._validate_distinct()
        return plan

    @classmethod
    def single_component(
        cls, hosts: Sequence[str], component: str = "app"
    ) -> "DeploymentPlan":
        """Plan for the simple K-of-N scenario: one component on N hosts."""
        return cls.from_mapping({component: list(hosts)})

    @classmethod
    def random(
        cls,
        topology: Topology,
        structure: ApplicationStructure,
        rng: int | np.random.Generator | None = None,
        forbid_shared_rack: bool = False,
        zone_constraints: "ZoneConstraints | None" = None,
        max_attempts: int = 200,
    ) -> "DeploymentPlan":
        """A uniformly random initial plan (§3.3.1, Step 1).

        With ``forbid_shared_rack`` the optional "no hosts from the same
        rack" heuristic is applied, sampling at most one host per rack.
        With ``zone_constraints`` the draw is rejection-sampled until the
        plan satisfies them (uniform over the constrained plan space);
        ``UnsatisfiableRequirements`` is raised when ``max_attempts``
        draws all violate.
        """
        if zone_constraints is not None and not zone_constraints.is_trivial:
            generator = make_rng(rng)
            for _ in range(max_attempts):
                plan = cls.random(
                    topology, structure, rng=generator,
                    forbid_shared_rack=forbid_shared_rack,
                )
                if zone_constraints.satisfied_by(plan, topology):
                    return plan
            raise UnsatisfiableRequirements(
                f"no random plan satisfied the zone constraints in "
                f"{max_attempts} draws"
            )
        generator = make_rng(rng)
        needed = structure.total_instances
        if forbid_shared_rack:
            racks = topology.racks()
            if len(racks) < needed:
                raise UnsatisfiableRequirements(
                    f"need {needed} distinct racks but only {len(racks)} exist"
                )
            chosen_racks = generator.choice(len(racks), size=needed, replace=False)
            pool = []
            for rack_index in chosen_racks:
                rack_hosts = topology.hosts_in_rack(racks[int(rack_index)])
                pool.append(rack_hosts[int(generator.integers(len(rack_hosts)))])
        else:
            if len(topology.hosts) < needed:
                raise UnsatisfiableRequirements(
                    f"need {needed} distinct hosts but only "
                    f"{len(topology.hosts)} exist"
                )
            indices = generator.choice(len(topology.hosts), size=needed, replace=False)
            pool = [topology.hosts[int(i)] for i in indices]

        placements = []
        cursor = 0
        for spec in structure.components:
            placements.append((spec.name, tuple(pool[cursor : cursor + spec.instances])))
            cursor += spec.instances
        return cls(tuple(placements))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate_distinct(self) -> None:
        hosts = self.hosts()
        if len(set(hosts)) != len(hosts):
            raise ConfigurationError(
                "deployment plans place each instance on a distinct host"
            )

    def validate_against(
        self,
        topology: Topology,
        structure: ApplicationStructure,
        capacity=None,
    ) -> None:
        """Check the plan fits the structure and names real hosts.

        Collects *every* problem and raises one field-level
        :class:`~repro.util.errors.ValidationError` (a
        :class:`ConfigurationError` subclass, so existing handlers keep
        working) instead of dying on the first. ``capacity`` optionally
        supplies a :class:`~repro.workload.capacity.CapacityModel`; each
        plan host must then have a free slot.
        """
        errors: list[tuple[str, str]] = []
        by_component = dict(self.placements)
        expected = {spec.name: spec.instances for spec in structure.components}
        if set(by_component) != set(expected):
            errors.append(
                (
                    "placements",
                    f"plan components {sorted(by_component)} do not match "
                    f"structure components {sorted(expected)}",
                )
            )
        else:
            for component, hosts in by_component.items():
                if len(hosts) != expected[component]:
                    errors.append(
                        (
                            f"placements.{component}",
                            f"needs {expected[component]} hosts, plan "
                            f"provides {len(hosts)}",
                        )
                    )
        from repro.topology.base import ComponentType

        for host_id in self.hosts():
            component = topology.components.get(host_id)
            if component is None:
                errors.append(("hosts", f"unknown host {host_id!r}"))
            elif component.component_type is not ComponentType.HOST:
                errors.append(
                    (
                        "hosts",
                        f"{host_id!r} is a {component.component_type.value}, "
                        "not a host",
                    )
                )
        hosts = self.hosts()
        if len(set(hosts)) != len(hosts):
            errors.append(
                ("hosts", "deployment plans place each instance on a distinct host")
            )
        if capacity is not None:
            for host_id in hosts:
                try:
                    free = capacity.free_slots(host_id)
                except Exception:
                    continue  # unknown host already reported above
                if free < 1:
                    errors.append(
                        ("capacity", f"host {host_id!r} has no free slot")
                    )
        if errors:
            raise ValidationError(errors)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def hosts(self) -> list[str]:
        """All hosts used by the plan, in instance order."""
        return [host for _, hosts in self.placements for host in hosts]

    def hosts_for(self, component: str) -> tuple[str, ...]:
        """The ordered hosts of one component's instances."""
        for name, hosts in self.placements:
            if name == component:
                return hosts
        raise ConfigurationError(f"plan has no component {component!r}")

    def host_of(self, instance: InstanceRef) -> str:
        """The host of one specific instance."""
        return self.hosts_for(instance.component)[instance.index]

    def instance_count(self) -> int:
        return sum(len(hosts) for _, hosts in self.placements)

    def host_set(self) -> frozenset[str]:
        return frozenset(self.hosts())

    # ------------------------------------------------------------------
    # Neighbour moves (§3.3.1, Step 3)
    # ------------------------------------------------------------------

    def replace_host(self, old_host: str, new_host: str) -> "DeploymentPlan":
        """A new plan with ``old_host`` swapped for ``new_host``."""
        if new_host in self.host_set():
            raise ConfigurationError(f"{new_host!r} is already used by the plan")
        replaced = False
        placements = []
        for component, hosts in self.placements:
            if old_host in hosts:
                hosts = tuple(new_host if h == old_host else h for h in hosts)
                replaced = True
            placements.append((component, hosts))
        if not replaced:
            raise ConfigurationError(f"{old_host!r} is not part of the plan")
        return DeploymentPlan(tuple(placements))

    def propose_move(
        self,
        topology: Topology,
        rng: int | np.random.Generator | None = None,
        max_attempts: int = 1_000,
        zone_constraints: "ZoneConstraints | None" = None,
    ) -> MoveDescriptor:
        """Draw one neighbour move without materialising the plan.

        Exactly the draw sequence of :meth:`random_neighbor` — one index
        into the plan's hosts, then rejection-sampled indices into the
        topology's hosts — so a search that proposes via descriptors and a
        search that proposes full plans consume identical RNG streams.
        Passing ``zone_constraints`` (None draws nothing extra) also
        rejection-samples the *destination*: a candidate is kept only if
        the resulting plan satisfies the constraints or strictly reduces
        the violation count — so a constraint-satisfying incumbent stays
        satisfying, and a violating incumbent (e.g. after a zone policy
        change mid-deployment) can walk toward compliance.
        """
        generator = make_rng(rng)
        current = self.hosts()
        used = set(current)
        if len(topology.hosts) <= len(used):
            raise UnsatisfiableRequirements("no spare host available for a swap")
        screened = zone_constraints is not None and not zone_constraints.is_trivial
        baseline = (
            len(zone_constraints.violations(self, topology)) if screened else 0
        )
        old_host = current[int(generator.integers(len(current)))]
        for _ in range(max_attempts):
            candidate = topology.hosts[int(generator.integers(len(topology.hosts)))]
            if candidate in used:
                continue
            move = MoveDescriptor(old_host, candidate)
            if screened:
                count = len(zone_constraints.violations(move.apply(self), topology))
                if count > 0 and count >= baseline:
                    continue
            return move
        raise UnsatisfiableRequirements(
            f"could not find an acceptable unused host in {max_attempts} draws"
        )

    def random_neighbor(
        self,
        topology: Topology,
        rng: int | np.random.Generator | None = None,
        max_attempts: int = 1_000,
    ) -> "DeploymentPlan":
        """Swap one random host for a random unused host.

        This is the neighbour-generation move of the annealing search: a
        single placement changes, everything else stays.
        """
        return self.propose_move(topology, rng, max_attempts).apply(self)

    def canonical_key(self) -> tuple:
        """Hashable identity ignoring instance order within a component.

        Two plans that place the same host multisets per component are the
        same deployment; instance indices are interchangeable.
        """
        return tuple(
            (component, tuple(sorted(hosts))) for component, hosts in self.placements
        )

    def __str__(self) -> str:
        parts = [
            f"{component}: [{', '.join(hosts)}]" for component, hosts in self.placements
        ]
        return "; ".join(parts)


def enumerate_k_of_n_plans(
    hosts: Iterable[str], n: int, component: str = "app"
) -> Iterable[DeploymentPlan]:
    """Yield every N-host plan over ``hosts`` (naive search baseline).

    The paper's naive alternative to annealing — "generate all possible
    deployment plans, assess them, and select the best" — is exponential;
    this generator exists for tests and for demonstrating exactly that.
    """
    from itertools import combinations

    for combo in combinations(list(hosts), n):
        yield DeploymentPlan.single_component(combo, component)
