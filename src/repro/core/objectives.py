"""Search objectives: reliability alone or combined with utility (§3.3.3).

The search maximises a *holistic measure* ``M = a * reliability +
b * utility`` (Eq. 7). Each objective contributes two things:

* ``measure(plan, assessment)`` — its score in [0, 1], higher is better;
* ``delta(...)`` — its contribution to the annealing Δ of Eq. 4 when a
  neighbour is worse. Reliability uses the paper's log-odds Δ (Eq. 5);
  utility objectives use plain differences, and a composite objective sums
  its members' weighted deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.anneal import classic_delta, paper_delta
from repro.core.plan import DeploymentPlan
from repro.core.result import AssessmentResult
from repro.util.errors import ConfigurationError
from repro.workload.model import HostWorkloadModel


class Objective:
    """One search criterion with a measure and an annealing delta."""

    name = "objective"

    def measure(self, plan: DeploymentPlan, assessment: AssessmentResult) -> float:
        """Score of a plan in [0, 1]; higher is better."""
        raise NotImplementedError

    def delta(
        self,
        current_plan: DeploymentPlan,
        current_assessment: AssessmentResult,
        neighbor_plan: DeploymentPlan,
        neighbor_assessment: AssessmentResult,
    ) -> float:
        """Annealing Δ; positive when the neighbour is worse."""
        raise NotImplementedError

    def prefers(
        self,
        candidate_plan: DeploymentPlan,
        candidate_assessment: AssessmentResult,
        incumbent_plan: DeploymentPlan,
        incumbent_assessment: AssessmentResult,
    ) -> bool:
        """Whether the candidate strictly beats the incumbent.

        Defined through :meth:`delta` so that "which plan is better" uses
        the same scale as the acceptance rule. This matters for composite
        objectives: their Δ amplifies order-of-magnitude reliability
        differences (Eq. 5), so a plan that is 5x more reliable is
        preferred even when its linear holistic measure is a whisker
        lower on the utility term.
        """
        return (
            self.delta(
                incumbent_plan,
                incumbent_assessment,
                candidate_plan,
                candidate_assessment,
            )
            < 0.0
        )


class ReliabilityObjective(Objective):
    """Pure reliability with the paper's log-odds Δ (Eq. 5)."""

    name = "reliability"

    def measure(self, plan, assessment):
        return assessment.estimate.score

    def delta(self, current_plan, current_assessment, neighbor_plan, neighbor_assessment):
        return paper_delta(
            current_assessment.estimate.score, neighbor_assessment.estimate.score
        )


class ClassicReliabilityObjective(Objective):
    """Reliability with the classic absolute-difference Δ.

    The configuration the paper argues fits badly (§3.3.2); exists for the
    Δ-setting ablation benchmark.
    """

    name = "reliability-classic-delta"

    def measure(self, plan, assessment):
        return assessment.estimate.score

    def delta(self, current_plan, current_assessment, neighbor_plan, neighbor_assessment):
        return classic_delta(
            current_assessment.estimate.score, neighbor_assessment.estimate.score
        )


class WorkloadUtilityObjective(Objective):
    """Prefers lightly-loaded hosts: utility = 1 - average workload.

    One of the two utility examples the paper names (resource utilisation
    of the plan's hosts, §3.3.3/§4.2.2).
    """

    name = "workload-utility"

    def __init__(self, workload_model: HostWorkloadModel):
        self.workload_model = workload_model

    def measure(self, plan, assessment):
        return 1.0 - self.workload_model.average(plan.hosts())

    def delta(self, current_plan, current_assessment, neighbor_plan, neighbor_assessment):
        return self.measure(current_plan, current_assessment) - self.measure(
            neighbor_plan, neighbor_assessment
        )


class BandwidthUtilityObjective(Objective):
    """Prefers plans whose communicating components sit close together.

    The paper's other utility example is the bandwidth usage across the
    plan's hosts (§3.3.3). We model the bandwidth cost of one unit of
    traffic between two hosts by how far up the tree it must travel:
    same host 0, same rack 1, same pod 2 (if the topology exposes pods),
    otherwise 3 (through the core). Utility is 1 minus the normalised mean
    distance over the application's communication edges; an application
    with no internal communication scores a neutral 1.0.
    """

    name = "bandwidth-utility"

    def __init__(self, topology, structure):
        self.topology = topology
        self.structure = structure
        self._edges = structure.communication_edges()

    def _distance(self, host_a: str, host_b: str) -> int:
        if host_a == host_b:
            return 0
        topo = self.topology
        if topo.rack_of(host_a) == topo.rack_of(host_b):
            return 1
        pod_of = getattr(topo, "pod_of", None)
        if pod_of is not None:
            pod_a, pod_b = pod_of(host_a), pod_of(host_b)
            if pod_a is not None and pod_a == pod_b:
                return 2
        return 3

    def measure(self, plan, assessment):
        if not self._edges:
            return 1.0
        total = 0.0
        count = 0
        for source, target in self._edges:
            for a in plan.hosts_for(source):
                for b in plan.hosts_for(target):
                    total += self._distance(a, b)
                    count += 1
        return 1.0 - (total / count) / 3.0

    def delta(self, current_plan, current_assessment, neighbor_plan, neighbor_assessment):
        return self.measure(current_plan, current_assessment) - self.measure(
            neighbor_plan, neighbor_assessment
        )


@dataclass(frozen=True)
class WeightedObjective:
    """An objective with its weight in the holistic measure (Eq. 7)."""

    objective: Objective
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(f"objective weight must be positive, got {self.weight}")


class CompositeObjective(Objective):
    """The holistic measure M = sum of weighted member scores (Eq. 7)."""

    name = "composite"

    def __init__(self, members: Sequence[WeightedObjective]):
        if not members:
            raise ConfigurationError("composite objective needs at least one member")
        self.members = tuple(members)

    @classmethod
    def reliability_and_utility(
        cls,
        utility: Objective,
        reliability_weight: float = 0.5,
        utility_weight: float = 0.5,
    ) -> "CompositeObjective":
        """The paper's evaluation setting: equal weights by default."""
        return cls(
            [
                WeightedObjective(ReliabilityObjective(), reliability_weight),
                WeightedObjective(utility, utility_weight),
            ]
        )

    def measure(self, plan, assessment):
        return sum(
            member.weight * member.objective.measure(plan, assessment)
            for member in self.members
        )

    def delta(self, current_plan, current_assessment, neighbor_plan, neighbor_assessment):
        return sum(
            member.weight
            * member.objective.delta(
                current_plan, current_assessment, neighbor_plan, neighbor_assessment
            )
            for member in self.members
        )
