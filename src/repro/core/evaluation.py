"""Per-round evaluation of an application structure over a deployment plan.

Implements the extended route-and-check of §3.2.4: instead of only asking
whether K of N instances are border-reachable, it checks that the
connectivity demanded by the application's internal structure is preserved
in each round.

An instance is **active** in a round when its host is alive and, for every
requirement of its component, it can reach at least one active instance of
the required source (or a border switch for EXTERNAL). A round is
**reliable** when every requirement ``(Ci, Cj, K)`` sees at least ``K``
active instances of ``Ci``.

Mutual requirements (the fully-meshed microservice cores of §4.2.3) make
"active" self-referential; the evaluator computes the *greatest* fixed
point — start from every alive instance being active and prune until
stable — which exists because pruning is monotone over a finite lattice.
For acyclic structures (K-of-N, layered chains) the loop converges in as
many sweeps as the structure is deep.

Everything here is vectorised across rounds: activity is a boolean matrix
(instances x rounds) per component, and one fixed-point sweep is a handful
of numpy reductions regardless of the round count.
"""

from __future__ import annotations

import numpy as np

from repro.app.structure import EXTERNAL, ApplicationStructure
from repro.core.plan import DeploymentPlan
from repro.routing.base import ReachabilityEngine, RoundStates
from repro.util.errors import ReproError


class StructureEvaluator:
    """Evaluates per-round reliability of (plan, structure) pairs."""

    def __init__(self, engine: ReachabilityEngine):
        self.engine = engine

    # ------------------------------------------------------------------

    def evaluate(
        self,
        states: RoundStates,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
    ) -> np.ndarray:
        """Boolean vector over rounds: True where the plan is reliable."""
        active = self.active_instances(states, plan, structure)
        reliable = np.ones(states.rounds, dtype=bool)
        for requirement in structure.requirements:
            matrix = active[requirement.component]
            if states.packed:
                # Counting is the estimate boundary: unpack here (and only
                # here), dropping the pad bits of the last byte.
                counts = np.unpackbits(matrix, axis=1, count=states.rounds).sum(axis=0)
            else:
                counts = matrix.sum(axis=0)
            np.logical_and(reliable, counts >= requirement.min_reachable, out=reliable)
        return reliable

    def active_instances(
        self,
        states: RoundStates,
        plan: DeploymentPlan,
        structure: ApplicationStructure,
    ) -> dict[str, np.ndarray]:
        """Per-component activity matrices (instances x rounds).

        An entry is True when that instance is *active* in that round —
        alive and satisfying all of its component's reachability
        requirements (the greatest fixed point described above). This is
        the instance-level view behind :meth:`evaluate`, also used by the
        risk analyzer to attribute impact to individual dependencies.
        """
        hosts_by_component = {
            spec.name: plan.hosts_for(spec.name) for spec in structure.components
        }
        external_by_host = self._external_reachability(
            states, structure, hosts_by_component
        )
        pair_reachable = self._pairwise_reachability(
            states, structure, hosts_by_component
        )
        return self._fixed_point(
            states,
            structure,
            hosts_by_component,
            external_by_host,
            pair_reachable,
        )

    # ------------------------------------------------------------------
    # Reachability inputs
    # ------------------------------------------------------------------

    def _external_reachability(
        self, states, structure, hosts_by_component
    ) -> dict[str, np.ndarray]:
        hosts_needing_external: list[str] = []
        for requirement in structure.requirements:
            if requirement.source == EXTERNAL:
                hosts_needing_external.extend(hosts_by_component[requirement.component])
        if not hosts_needing_external:
            return {}
        return self.engine.external_reachable(states, hosts_needing_external)

    def _pairwise_reachability(
        self, states, structure, hosts_by_component
    ) -> dict[tuple[str, str], np.ndarray]:
        """Reachability vectors keyed by canonical ``(min, max)`` host pair.

        Reachability is symmetric, so each unordered pair is queried and
        stored once under its sorted tuple (cheaper to build and hash
        than the frozensets this used to key by).
        """
        wanted: set[tuple[str, str]] = set()
        for requirement in structure.requirements:
            if requirement.source == EXTERNAL:
                continue
            for a in hosts_by_component[requirement.component]:
                for b in hosts_by_component[requirement.source]:
                    if a != b:
                        wanted.add((a, b) if a < b else (b, a))
        if not wanted:
            return {}
        return self.engine.pairwise_reachable(states, sorted(wanted))

    # ------------------------------------------------------------------
    # Greatest fixed point of instance activity
    # ------------------------------------------------------------------

    def _fixed_point(
        self,
        states: RoundStates,
        structure: ApplicationStructure,
        hosts_by_component: dict[str, tuple[str, ...]],
        external_by_host: dict[str, np.ndarray],
        pair_reachable: dict[tuple[str, str], np.ndarray],
    ) -> dict[str, np.ndarray]:
        # All matrices use the states' representation: dense boolean rows,
        # or packed uint8 rows under the compiled kernel. The sweeps below
        # only use bitwise AND/OR and equality, which are representation-
        # agnostic; pad bits prune monotonically like every other bit.
        dtype = np.uint8 if states.packed else bool

        # Start optimistic: every alive instance is active.
        active: dict[str, np.ndarray] = {}
        for component, hosts in hosts_by_component.items():
            matrix = np.empty((len(hosts), states.width), dtype=dtype)
            for row, host in enumerate(hosts):
                matrix[row] = states.materialize(states.alive_mask(host))
            active[component] = matrix

        external_matrix: dict[str, np.ndarray] = {}
        if states.packed and external_by_host:
            # Packed fast path: AND each component's whole activity matrix
            # against its hosts' stacked external rows in one vectorised
            # sweep step instead of row-at-a-time (same bits — AND is
            # idempotent and per-row vs whole-matrix change detection
            # reach the same fixed point).
            for component, hosts in hosts_by_component.items():
                if all(host in external_by_host for host in hosts):
                    external_matrix[component] = np.stack(
                        [external_by_host[host] for host in hosts]
                    )

        requirements_by_component: dict[str, list] = {
            spec.name: structure.requirements_for(spec.name)
            for spec in structure.components
        }

        # Each sweep can only clear bits, so the loop terminates; the cap
        # is a defensive bound far above any structure's convergence depth.
        max_sweeps = 4 * (structure.total_instances + len(structure.requirements)) + 8
        for _ in range(max_sweeps):
            changed = False
            for component, hosts in hosts_by_component.items():
                matrix = active[component]
                for requirement in requirements_by_component[component]:
                    if requirement.source == EXTERNAL:
                        ext = external_matrix.get(component)
                        if ext is not None:
                            updated = matrix & ext
                            if not np.array_equal(updated, matrix):
                                active[component] = matrix = updated
                                changed = True
                            continue
                        for row, host in enumerate(hosts):
                            updated = matrix[row] & external_by_host[host]
                            if not np.array_equal(updated, matrix[row]):
                                matrix[row] = updated
                                changed = True
                        continue
                    source_hosts = hosts_by_component[requirement.source]
                    source_active = active[requirement.source]
                    for row, host in enumerate(hosts):
                        # Reachable from >= 1 *active* source instance.
                        can_reach = states.zeros()
                        for src_row, src_host in enumerate(source_hosts):
                            if src_host == host:
                                # Colocated instances trivially reach each
                                # other while the shared host is alive.
                                link = source_active[src_row]
                            else:
                                pair = (
                                    (host, src_host)
                                    if host < src_host
                                    else (src_host, host)
                                )
                                link = pair_reachable[pair] & source_active[src_row]
                            np.bitwise_or(can_reach, link, out=can_reach)
                        updated = matrix[row] & can_reach
                        if not np.array_equal(updated, matrix[row]):
                            matrix[row] = updated
                            changed = True
            if not changed:
                return active
        raise ReproError(
            "structure evaluation did not converge; this indicates a bug in "
            "the fixed-point sweep"
        )
