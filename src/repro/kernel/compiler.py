"""Flattening fault-tree forests into non-recursive instruction programs.

The legacy evaluator walks one :class:`~repro.faults.faulttree.Gate`
object graph per subject per assessment — a recursive Python interpreter
re-dispatching on node types. The compiler replaces that with a flat
*program*: every distinct node of the whole forest becomes one
instruction ``(op, operand, child-span)`` in postorder (children always
precede parents), with child node-ids stored in one CSR-style table.

Structural hashing deduplicates common subtrees *across* subjects: the
shared dependency branches of Fig. 5 (a power supply feeding a whole
row, a cooling unit shared by racks) compile to a single node evaluated
once per assessment, no matter how many subjects' trees reference them.
Single-child gates collapse to their child and ``k``-of-``n`` gates with
``k == 1`` / ``k == n`` canonicalise to OR / AND at compile time — all
boolean-algebra identities, so evaluation results are unchanged.

Evaluation (:meth:`CompiledForest.evaluate`) is a single non-recursive
loop over the needed instructions, operating on bit-packed state rows.
``None`` is used as the canonical all-zero row: a leaf whose component
never failed is ``None``, and gates propagate it algebraically (OR skips
it, AND short-circuits to ``None``, k-of-n counts it as zero), so the
usual case — almost nothing failed — touches almost no bytes. This
mirrors exactly the legacy pipeline's "skip subjects whose events never
failed" and ``_ZeroFill`` semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.faults.faulttree import BasicEvent, FaultTreeNode, Gate, GateKind
from repro.kernel.arena import ComponentArena
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.dependencies import DependencyModel

#: Instruction opcodes.
OP_LEAF = 0
OP_OR = 1
OP_AND = 2
OP_KOFN = 3

OP_NAMES = {OP_LEAF: "leaf", OP_OR: "or", OP_AND: "and", OP_KOFN: "kofn"}


@dataclass(frozen=True)
class ForestStats:
    """Compile-time accounting, surfaced in benchmarks and ``repr``."""

    subjects: int
    nodes: int
    leaves: int
    gates: int
    dedup_hits: int


class CompiledForest:
    """A compiled fault-tree forest plus its non-recursive evaluator.

    Mutable: new subjects can be interned at any time via
    :meth:`ensure_subject` (node ids only ever grow, so values cached
    against old ids stay valid — the incremental engine leans on this).
    """

    def __init__(self, arena: ComponentArena):
        self.arena = arena
        # One instruction per node, parallel lists (plain Python lists:
        # the evaluator indexes them far more cheaply than 0-d numpy
        # scalars, and growth is O(1) appends).
        self.ops: list[int] = []
        self.operands: list[int] = []  # leaf: arena index; kofn: threshold
        self.child_start: list[int] = []
        self.child_end: list[int] = []
        self.children: list[int] = []  # CSR child table
        self.roots: dict[str, int] = {}  # subject id -> root node id
        self.subject_nodes: dict[str, list[int]] = {}  # ascending node ids
        self._interned: dict[tuple, int] = {}
        self._dedup_hits = 0

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def ensure_subject(self, subject_id: str, tree_root: FaultTreeNode) -> int:
        """Intern one subject's tree; idempotent per subject id."""
        root = self.roots.get(subject_id)
        if root is not None:
            return root
        root = self._intern(tree_root)
        self.roots[subject_id] = root
        self.subject_nodes[subject_id] = self._descendants(root)
        return root

    def _intern(self, node: FaultTreeNode) -> int:
        if isinstance(node, BasicEvent):
            key = (OP_LEAF, self.arena.index_of(node.component_id))
            return self._emit(key, OP_LEAF, key[1], ())
        child_ids = tuple(self._intern(child) for child in node.children)
        if node.kind is GateKind.OR:
            op, operand = OP_OR, 0
        elif node.kind is GateKind.AND:
            op, operand = OP_AND, 0
        elif node.threshold == 1:
            # Canonicalise degenerate k-of-n gates to plain OR / AND.
            op, operand = OP_OR, 0
        elif node.threshold == len(child_ids):
            op, operand = OP_AND, 0
        else:
            op, operand = OP_KOFN, node.threshold
        if len(child_ids) == 1 and op != OP_KOFN:
            # or(x) == and(x) == 1-of-1(x) == x
            self._dedup_hits += 1
            return child_ids[0]
        # Child order does not change OR/AND/k-of-n semantics, but keep
        # it in the key so the program mirrors the source trees exactly.
        key = (op, operand, child_ids)
        return self._emit(key, op, operand, child_ids)

    def _emit(self, key: tuple, op: int, operand: int, child_ids: tuple) -> int:
        existing = self._interned.get(key)
        if existing is not None:
            self._dedup_hits += 1
            return existing
        node_id = len(self.ops)
        self.ops.append(op)
        self.operands.append(operand)
        self.child_start.append(len(self.children))
        self.children.extend(child_ids)
        self.child_end.append(len(self.children))
        self._interned[key] = node_id
        return node_id

    def leaf_node(self, arena_index: int) -> int | None:
        """Node id of the leaf for one arena component index, if interned.

        The exact evaluator uses this to detect basic events that are
        *also* referenced outside the forest (e.g. a component sampled
        directly as a raw link element while some subject's tree reads
        it too) — such events are shared and must be conditioned.
        """
        return self._interned.get((OP_LEAF, arena_index))

    def _descendants(self, root: int) -> list[int]:
        """Ascending, deduplicated node ids needed to evaluate ``root``.

        Postorder interning guarantees every child id is smaller than its
        parent's, so ascending id order *is* a valid evaluation order.
        """
        seen: set[int] = set()
        stack = [root]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self.children[self.child_start[nid] : self.child_end[nid]])
        return sorted(seen)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluation_order(self, subject_ids: Iterable[str]) -> list[int]:
        """Ascending node ids needed to evaluate the given subjects.

        A pure function of the (compiled) subjects — callers that
        evaluate the same subject set every assessment cache this list
        and pass it to :meth:`evaluate` to skip the set algebra.
        """
        needed: set[int] = set()
        for subject in subject_ids:
            if subject not in self.roots:
                raise ConfigurationError(
                    f"subject {subject!r} was not compiled into the forest"
                )
            needed.update(self.subject_nodes[subject])
        return sorted(needed)

    def evaluate(
        self,
        subject_ids: Iterable[str],
        leaf_row: Callable[[int], np.ndarray | None],
        values: dict[int, np.ndarray | None] | None = None,
        order: list[int] | None = None,
    ) -> dict[str, np.ndarray | None]:
        """Evaluate several subjects' trees in one pass over the program.

        ``leaf_row`` maps an arena component index to that component's
        bit-packed failure row, or ``None`` when it never failed.
        ``values`` is the node-value cache; pass a persistent dict to
        reuse shared-subtree results across calls (the incremental
        engine does), or leave it ``None`` for a per-call scratch dict.
        ``order`` optionally supplies a precomputed
        :meth:`evaluation_order` for the same subjects. Returns, per
        subject, the packed effective-failure row or ``None`` for
        never-fails.
        """
        if values is None:
            values = {}
        subjects = list(subject_ids)
        if order is None:
            needed: set[int] = set()
            for subject in subjects:
                root = self.roots.get(subject)
                if root is None:
                    raise ConfigurationError(
                        f"subject {subject!r} was not compiled into the forest"
                    )
                if root not in values:
                    needed.update(
                        nid
                        for nid in self.subject_nodes[subject]
                        if nid not in values
                    )
            order = sorted(needed)

        ops, operands = self.ops, self.operands
        child_start, child_end, children = (
            self.child_start,
            self.child_end,
            self.children,
        )
        for nid in order:
            if nid in values:
                continue
            op = ops[nid]
            if op == OP_LEAF:
                values[nid] = leaf_row(operands[nid])
                continue
            rows = [
                values[child]
                for child in children[child_start[nid] : child_end[nid]]
            ]
            if op == OP_OR:
                # Copy-on-write: alias the first firing child, allocate a
                # fresh row only when a second one must be merged in.
                # Stored values are never mutated afterwards (every gate
                # that combines further allocates the same way), so the
                # aliasing is safe; rows are read-only by convention.
                result = None
                owned = False
                for row in rows:
                    if row is None:
                        continue
                    if result is None:
                        result = row
                    elif owned:
                        np.bitwise_or(result, row, out=result)
                    else:
                        result = np.bitwise_or(result, row)
                        owned = True
                values[nid] = result
            elif op == OP_AND:
                result = None
                owned = False
                for row in rows:
                    if row is None:
                        result = None
                        break
                    if result is None:
                        result = row
                    elif owned:
                        np.bitwise_and(result, row, out=result)
                    else:
                        result = np.bitwise_and(result, row)
                        owned = True
                values[nid] = result
            else:  # OP_KOFN
                threshold = operands[nid]
                firing = [row for row in rows if row is not None]
                if len(firing) < threshold:
                    values[nid] = None
                    continue
                counts = np.zeros(self._eval_rounds(firing[0]), dtype=np.int16)
                for row in firing:
                    counts += np.unpackbits(row, count=counts.size)
                dense = counts >= threshold
                values[nid] = np.packbits(dense) if dense.any() else None
        return {subject: values[self.roots[subject]] for subject in subjects}

    @staticmethod
    def _eval_rounds(row: np.ndarray) -> int:
        """Upper bound on rounds from a packed row's byte width.

        Pad bits of a failure row are always 0, so counting over the
        padded tail only appends rounds in which nothing fires — they are
        discarded whenever the row is unpacked with ``count=rounds``.
        """
        return row.size * 8

    # ------------------------------------------------------------------

    def stats(self) -> ForestStats:
        leaves = sum(1 for op in self.ops if op == OP_LEAF)
        return ForestStats(
            subjects=len(self.roots),
            nodes=len(self.ops),
            leaves=leaves,
            gates=len(self.ops) - leaves,
            dedup_hits=self._dedup_hits,
        )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"<CompiledForest: {s.subjects} subjects, {s.nodes} nodes "
            f"({s.leaves} leaves), {s.dedup_hits} dedup hits>"
        )


class FaultTreeCompiler:
    """Compiles a :class:`DependencyModel`'s trees against one arena."""

    def __init__(self, arena: ComponentArena):
        self.arena = arena

    def compile_subjects(
        self, model: "DependencyModel", subject_ids: Iterable[str]
    ) -> CompiledForest:
        """Compile the forest of the given subjects (deduplicated)."""
        forest = CompiledForest(self.arena)
        self.extend(forest, model, subject_ids)
        return forest

    def extend(
        self,
        forest: CompiledForest,
        model: "DependencyModel",
        subject_ids: Iterable[str],
    ) -> None:
        """Intern any not-yet-compiled subjects into an existing forest."""
        for subject_id in subject_ids:
            if subject_id not in forest.roots:
                forest.ensure_subject(subject_id, model.tree_for(subject_id).root)
