"""Integer component arena: string ids interned to dense int32 indices.

Every per-assessment structure the compiled kernel touches — packed
state matrices, fault-tree leaf operands, closure sets — is indexed by a
dense integer instead of a string id. The arena is built once per
(topology, dependency model) pair, in the deterministic iteration order
of :meth:`~repro.faults.dependencies.DependencyModel.failure_probabilities`,
so indices are stable for the lifetime of an assessor and identical
across processes given the same substrate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.dependencies import DependencyModel

#: dtype of arena indices.
INDEX_DTYPE = np.int32


class ComponentArena:
    """Bidirectional component-id <-> dense-index interning table."""

    __slots__ = ("ids", "index", "probabilities")

    def __init__(self, ids: Iterable[str], probabilities: Iterable[float] | None = None):
        self.ids: tuple[str, ...] = tuple(ids)
        self.index: dict[str, int] = {cid: i for i, cid in enumerate(self.ids)}
        if len(self.index) != len(self.ids):
            raise ConfigurationError("duplicate component ids in arena")
        self.probabilities: np.ndarray | None = (
            None
            if probabilities is None
            else np.asarray(tuple(probabilities), dtype=np.float64)
        )
        if self.probabilities is not None and self.probabilities.shape != (
            len(self.ids),
        ):
            raise ConfigurationError(
                "probabilities length does not match component count"
            )

    @classmethod
    def for_model(cls, model: "DependencyModel") -> "ComponentArena":
        """Intern every network + dependency component of one substrate."""
        probabilities = model.failure_probabilities()
        return cls(probabilities.keys(), probabilities.values())

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, component_id: str) -> bool:
        return component_id in self.index

    def index_of(self, component_id: str) -> int:
        """Dense index of one component id."""
        try:
            return self.index[component_id]
        except KeyError:
            raise ConfigurationError(
                f"component {component_id!r} is not in the arena"
            ) from None

    def id_of(self, index: int) -> str:
        """Component id at one dense index."""
        if not 0 <= index < len(self.ids):
            raise ConfigurationError(
                f"arena index {index} out of range [0, {len(self.ids)})"
            )
        return self.ids[index]

    def indices_of(self, component_ids: Iterable[str]) -> np.ndarray:
        """Dense indices of several component ids (input order preserved)."""
        return np.fromiter(
            (self.index_of(cid) for cid in component_ids),
            dtype=INDEX_DTYPE,
        )

    def __repr__(self) -> str:
        return f"<ComponentArena: {len(self.ids)} components>"
