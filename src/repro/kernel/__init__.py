"""Compiled assessment kernel: integer arenas, packed states, flat programs.

The per-assessment hot path — sample, fault-tree reasoning, route and
check — historically flowed through string-keyed dicts of index arrays
and a recursive interpreter over :class:`Gate` objects. This package
compiles that pipeline down to integer-indexed numpy kernels:

* :class:`~repro.kernel.arena.ComponentArena` interns component ids to
  dense ``int32`` indices, built once per (topology, dependency model);
* samplers emit a bit-packed ``(components x rounds)`` state matrix
  (:class:`~repro.kernel.packed.PackedBatch`) instead of per-component
  index dicts, via stream-identical ``sample_packed`` fast paths;
* :class:`~repro.kernel.compiler.FaultTreeCompiler` flattens the whole
  forest into one postorder instruction program with shared subtrees
  deduplicated, evaluated by a non-recursive loop;
* the packed states flow into routing and structure evaluation as
  bitwise AND/OR on ``uint8`` rows
  (:class:`~repro.routing.base.PackedRoundStates`), unpacking only at
  the estimate boundary.

Everything is bit-identical to the legacy interpreter for the same
:class:`~repro.core.api.AssessmentConfig` and rng seed — the kernel
changes how states are stored and combined, never which draws are made
or which boolean formulas are applied. Enable it with
``AssessmentConfig(kernel=True)``; topologies without a packed-capable
reachability engine (the generic per-round engine) transparently fall
back to the legacy interpreter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.kernel.arena import INDEX_DTYPE, ComponentArena
from repro.kernel.compiler import CompiledForest, FaultTreeCompiler, ForestStats
from repro.kernel.exact import (
    ExactBudget,
    ExactDeclined,
    Marginals,
    compute_marginals,
    enumeration_rows,
    enumeration_weights,
    exact_tree_probability,
)
from repro.kernel.packed import (
    PACK_DTYPE,
    PackedBatch,
    pack_bool_matrix,
    pack_indices,
    packed_width,
    unpack_matrix,
    unpack_row,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.dependencies import DependencyModel
    from repro.routing.base import ReachabilityEngine
    from repro.sampling.base import Sampler
    from repro.topology.base import Topology

__all__ = [
    "INDEX_DTYPE",
    "PACK_DTYPE",
    "AssessmentKernel",
    "ComponentArena",
    "CompiledForest",
    "ExactBudget",
    "ExactDeclined",
    "FaultTreeCompiler",
    "ForestStats",
    "Marginals",
    "PackedBatch",
    "compute_marginals",
    "enumeration_rows",
    "enumeration_weights",
    "exact_tree_probability",
    "kernel_supported",
    "pack_bool_matrix",
    "pack_indices",
    "packed_width",
    "unpack_matrix",
    "unpack_row",
]


def kernel_supported(engine: "ReachabilityEngine") -> bool:
    """Whether the compiled kernel can drive this reachability engine.

    The packed representation needs an engine whose route-and-check is
    pure boolean algebra over alive masks (fat-tree, leaf-spine). The
    generic per-round union-find engine reads individual rounds, so
    generic topologies keep the legacy interpreter.
    """
    return bool(getattr(engine, "supports_packed", False))


class AssessmentKernel:
    """Compiled state for one (topology, dependency model) substrate.

    Owns the component arena and the growing compiled forest; stateless
    with respect to individual assessments (per-assessment scratch lives
    in the caller), so one kernel is shared by every assessment an
    assessor runs — exactly like the legacy per-assessor caches.
    """

    def __init__(self, topology: "Topology", dependency_model: "DependencyModel"):
        self.topology = topology
        self.dependency_model = dependency_model
        self.arena = ComponentArena.for_model(dependency_model)
        self.forest = CompiledForest(self.arena)
        self._compiler = FaultTreeCompiler(self.arena)
        # component_ids tuple -> arena-index lookup; valid for this
        # kernel's arena only, hence owned here (see row_for_index).
        self._leaf_lookup_cache: dict = {}
        # id(subjects set) -> (strong ref, evaluation order). The
        # assessor's closure memo hands the same set object to every
        # assessment of a plan's host set, so identity is a safe and
        # free cache key; the strong ref pins the id.
        self._order_cache: dict[int, tuple[object, list[int]]] = {}
        # frozenset(subjects) -> evaluation order: content-addressed
        # fallback for callers that rebuild equal subject sets instead of
        # reusing one object — the batched search loop proposes candidate
        # closures per move, and neighbouring moves frequently revisit
        # the same host set through fresh set objects.
        self._order_by_content: dict[frozenset, list[int]] = {}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_packed(
        self,
        sampler: "Sampler",
        probabilities: Mapping[str, float],
        rounds: int,
        rng: np.random.Generator,
        cancel=None,
    ) -> PackedBatch:
        """One packed batch from any sampler.

        Samplers with a matrix-native ``sample_packed`` fast path are
        called directly; anything else runs its ordinary ``sample`` and
        the sparse result is packed — either way the rng stream advances
        exactly as the legacy path's would.
        """
        fast = getattr(sampler, "sample_packed", None)
        if fast is not None:
            return fast(probabilities, rounds, rng, cancel=cancel)
        batch = sampler.sample(probabilities, rounds, rng, cancel=cancel)
        return PackedBatch.from_sample_batch(batch)

    # ------------------------------------------------------------------
    # Fault-tree reasoning
    # ------------------------------------------------------------------

    def compile_subjects(self, subject_ids: Iterable[str]) -> None:
        """Intern any new subjects' trees into the shared forest."""
        self._compiler.extend(self.forest, self.dependency_model, subject_ids)

    def effective_states(
        self,
        subjects: Iterable[str],
        sampled: Iterable[str],
        batch: PackedBatch,
        values: dict[int, np.ndarray | None] | None = None,
    ) -> dict[str, np.ndarray]:
        """Packed effective per-round failure rows after fault-tree reasoning.

        The kernel analogue of the legacy "reason over each subject's
        tree, then register failing links" stage: returns a mapping from
        element id to packed failure row containing only elements that
        fail in at least one round (absent == always alive, the
        :class:`RoundStates` convention).
        """
        if not isinstance(subjects, set):
            subjects = set(subjects)
        entry = self._order_cache.get(id(subjects))
        if entry is not None and entry[0] is subjects:
            order = entry[1]
        else:
            content_key = frozenset(subjects)
            order = self._order_by_content.get(content_key)
            if order is None:
                self.compile_subjects(subjects)
                order = self.forest.evaluation_order(subjects)
                if len(self._order_by_content) >= 256:
                    self._order_by_content.clear()
                self._order_by_content[content_key] = order
            if len(self._order_cache) >= 64:
                self._order_cache.clear()
            self._order_cache[id(subjects)] = (subjects, order)
        effective = self.forest.evaluate(
            subjects,
            batch.row_for_index(self.arena, self._leaf_lookup_cache),
            values,
            order=order,
        )
        failed: dict[str, np.ndarray] = {
            subject: row for subject, row in effective.items() if row is not None
        }
        trees = self.dependency_model.trees
        components = self.topology.components
        index_get = batch._index.get
        nonzero, matrix = batch.nonzero, batch.matrix
        for cid in sampled:
            if cid in subjects or cid in trees or cid not in components:
                continue
            i = index_get(cid)
            if i is not None and nonzero[i]:
                failed[cid] = matrix[i]
        return failed

    def __repr__(self) -> str:
        return (
            f"<AssessmentKernel on {self.topology.name!r}: "
            f"{len(self.arena)} components, {self.forest.stats()}>"
        )
