"""Bit-packed failure-state representation (8 rounds per byte).

The sampled failure table of §3.2.1 is boolean, so the kernel stores it
as ``np.packbits`` rows: one ``uint8`` vector of ``ceil(rounds / 8)``
bytes per component, MSB-first (numpy's default ``bitorder="big"``).
Bitwise ``&`` / ``|`` / ``~`` on packed rows compute the same per-round
boolean algebra as the legacy dense vectors at an eighth of the memory
traffic; dense views are materialised only at the estimate boundary via
:func:`unpack_row`, whose ``count=rounds`` cut discards the pad bits of
the last byte, which is what makes round counts that are not multiples
of 8 safe everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sampling.base import SampleBatch

#: dtype of packed state rows.
PACK_DTYPE = np.uint8


def packed_width(rounds: int) -> int:
    """Bytes per packed row covering ``rounds`` sampling rounds."""
    if rounds <= 0:
        raise ConfigurationError(f"rounds must be positive, got {rounds}")
    return (rounds + 7) // 8


def pack_bool_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(components, rounds)`` boolean matrix row-wise."""
    return np.packbits(np.ascontiguousarray(matrix), axis=1)


def pack_indices(indices: np.ndarray, rounds: int) -> np.ndarray:
    """Packed row with the given (sorted or not) round indices set."""
    dense = np.zeros(rounds, dtype=bool)
    if len(indices):
        dense[indices] = True
    return np.packbits(dense)


def unpack_row(row: np.ndarray, rounds: int) -> np.ndarray:
    """Dense boolean per-round vector of one packed row (pads dropped)."""
    return np.unpackbits(row, count=rounds).view(bool)


def unpack_matrix(matrix: np.ndarray, rounds: int) -> np.ndarray:
    """Dense boolean ``(components, rounds)`` view of a packed matrix."""
    return np.unpackbits(matrix, axis=1, count=rounds).view(bool)


@dataclass
class PackedBatch:
    """Failure states of sampled components as a bit-packed matrix.

    The kernel-native sibling of
    :class:`~repro.sampling.base.SampleBatch`: ``matrix[i]`` is the
    packed per-round failure row of ``component_ids[i]``. Components
    absent from ``component_ids`` never failed. ``nonzero`` flags rows
    with at least one failure, so downstream stages can skip the (vast)
    all-alive majority without touching row bytes again.
    """

    rounds: int
    component_ids: tuple[str, ...] = ()
    matrix: np.ndarray | None = None
    _index: dict[str, int] = field(default_factory=dict, repr=False)
    nonzero: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ConfigurationError(f"rounds must be positive, got {self.rounds}")
        if self.matrix is None:
            self.matrix = np.zeros((0, packed_width(self.rounds)), dtype=PACK_DTYPE)
        if self.matrix.shape != (len(self.component_ids), packed_width(self.rounds)):
            raise ConfigurationError(
                f"packed matrix shape {self.matrix.shape} does not match "
                f"{len(self.component_ids)} components x "
                f"{packed_width(self.rounds)} bytes"
            )
        if not self._index:
            self._index = {cid: i for i, cid in enumerate(self.component_ids)}
        if self.nonzero is None:
            self.nonzero = self.matrix.any(axis=1)

    @property
    def width(self) -> int:
        """Bytes per row."""
        return packed_width(self.rounds)

    def row_for(self, component_id: str) -> np.ndarray | None:
        """Packed failure row, or ``None`` when the component never failed
        (including components that were not sampled at all)."""
        i = self._index.get(component_id)
        if i is None or not self.nonzero[i]:
            return None
        return self.matrix[i]

    def row_for_index(
        self, arena, lookup_cache: dict | None = None
    ) -> "Callable[[int], np.ndarray | None]":
        """A leaf-lookup closure over arena indices for the compiled forest.

        Maps an arena component index to that component's packed failure
        row, or ``None`` for never-failed / unsampled components.
        ``lookup_cache`` (any mutable mapping the caller keeps, e.g. on
        the kernel) memoizes the index translation per distinct
        ``component_ids`` tuple — sampler layouts reuse one tuple object
        across batches, so repeated assessments skip the id walk.
        """
        lookup = None if lookup_cache is None else lookup_cache.get(self.component_ids)
        if lookup is None:
            lookup = np.full(len(arena), -1, dtype=np.int64)
            arena_index = arena.index
            for i, cid in enumerate(self.component_ids):
                idx = arena_index.get(cid)
                if idx is not None:
                    lookup[idx] = i
            if lookup_cache is not None:
                if len(lookup_cache) >= 64:
                    lookup_cache.clear()
                lookup_cache[self.component_ids] = lookup
        nonzero, matrix = self.nonzero, self.matrix

        def row(op: int) -> np.ndarray | None:
            i = lookup[op]
            if i < 0 or not nonzero[i]:
                return None
            return matrix[i]

        return row

    def dense(self, component_id: str) -> np.ndarray:
        """Dense boolean per-round vector (all-False when never failed)."""
        row = self.row_for(component_id)
        if row is None:
            return np.zeros(self.rounds, dtype=bool)
        return unpack_row(row, self.rounds)

    # ------------------------------------------------------------------
    # Conversions to/from the legacy sparse-index representation
    # ------------------------------------------------------------------

    @classmethod
    def from_sample_batch(
        cls, batch: "SampleBatch", component_ids: Iterable[str] | None = None
    ) -> "PackedBatch":
        """Pack a legacy :class:`SampleBatch` (bit-identical by construction).

        This is the fallback for samplers without a matrix-native
        ``sample_packed`` fast path: the draws (and hence the rng stream)
        are exactly the legacy ones, only the storage changes.
        """
        ids = tuple(component_ids) if component_ids is not None else tuple(
            batch.failed_rounds
        )
        dense = np.zeros((len(ids), batch.rounds), dtype=bool)
        for i, cid in enumerate(ids):
            failed = batch.failed_rounds.get(cid)
            if failed is not None and failed.size:
                dense[i, failed] = True
        return cls(
            rounds=batch.rounds,
            component_ids=ids,
            matrix=pack_bool_matrix(dense) if len(ids) else None,
        )

    def to_sample_batch(self) -> "SampleBatch":
        """The equivalent legacy sparse-index batch (for tests/debugging)."""
        from repro.sampling.base import ROUND_DTYPE, SampleBatch

        batch = SampleBatch(rounds=self.rounds)
        for i, cid in enumerate(self.component_ids):
            if not self.nonzero[i]:
                continue
            failed = np.nonzero(unpack_row(self.matrix[i], self.rounds))[0]
            batch.failed_rounds[cid] = failed.astype(ROUND_DTYPE)
        return batch


def concat_packed(batches: Sequence[PackedBatch]) -> PackedBatch:
    """Stack several packed batches over the same round count."""
    if not batches:
        raise ConfigurationError("need at least one batch to concatenate")
    rounds = batches[0].rounds
    for batch in batches[1:]:
        if batch.rounds != rounds:
            raise ConfigurationError("cannot concatenate batches of mixed rounds")
    ids: tuple[str, ...] = ()
    for batch in batches:
        ids += batch.component_ids
    return PackedBatch(
        rounds=rounds,
        component_ids=ids,
        matrix=np.concatenate([b.matrix for b in batches], axis=0)
        if ids
        else None,
    )
