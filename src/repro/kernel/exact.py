"""Exact fault-tree probabilities compiled from the kernel program.

The dagger samplers estimate failure probabilities; this module computes
them *exactly* from the same flattened instruction program the compiled
kernel evaluates (:mod:`repro.kernel.compiler`), following the
analytic-availability line of Bibartiu et al. (PAPERS.md): availability
of redundant cloud structures is a closed-form computation as long as the
dependency structure stays tractable.

Two exact primitives are provided:

* :func:`compute_marginals` — exact per-node failure probabilities over a
  compiled sub-forest. Shared dependency roots (a power supply feeding a
  row, a zone's cooling plant) make subjects *correlated*, so they are
  **conditioned out**: every basic event reachable through a shared node
  becomes one bit of a conditioning assignment sigma, and all node
  probabilities are propagated as vectors over the ``2**C`` assignments
  at once. Given sigma the remaining leaves are disjoint per gate, so the
  bottom-up propagation is exact — OR multiplies survival, AND multiplies
  failure, and k-of-n runs the Poisson-binomial dynamic program (no
  ``2**n`` enumeration, which is how the fleet capacity planner gets
  exact availability for fleets of any size). The exact marginal is then
  the sigma-weighted average.

* :func:`enumeration_rows` — the bit-packed state enumeration used for
  exact *plan-level* reliability (see
  :class:`repro.core.analytic.AnalyticAssessor`): state ``s`` of
  ``2**bits`` fails component ``i`` iff bit ``i`` of ``s`` is set, laid
  out exactly like a sampled :class:`~repro.kernel.packed.PackedBatch`
  row, so the whole enumeration flows through the unchanged compiled
  forest + packed route-and-check as "rounds" and is weighted afterwards
  by each state's exact probability.

Everything is deterministic: orders derive from arena indices and sorted
component ids, never from set iteration, so exact results are bit-stable
across processes (the property the kernel already guarantees for sampled
results). Intractable inputs raise :class:`ExactDeclined` — callers fall
back to sampling, they never get a silently-truncated "exact" number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.kernel.arena import ComponentArena
from repro.kernel.compiler import OP_AND, OP_KOFN, OP_LEAF, OP_OR, CompiledForest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.faulttree import FaultTree

__all__ = [
    "ExactBudget",
    "ExactDeclined",
    "Marginals",
    "compute_marginals",
    "enumeration_rows",
    "enumeration_weights",
    "exact_tree_probability",
]


class ExactDeclined(Exception):
    """The closure exceeds the exact evaluator's tractability budget.

    Carries a human-readable reason; callers are expected to fall back to
    sampling (and say so), never to swallow the decline silently.
    """


@dataclass(frozen=True)
class ExactBudget:
    """Tractability cutoffs for the exact evaluator.

    Attributes:
        shared_bits: Maximum conditioning bits (basic events under shared
            nodes) :func:`compute_marginals` will enumerate — cost and
            memory scale with ``2**shared_bits``.
        state_bits: Maximum uncertain basic events the plan-level
            enumeration (:mod:`repro.core.analytic`) will expand into
            ``2**state_bits`` exact states.
    """

    shared_bits: int = 12
    state_bits: int = 20

    def __post_init__(self) -> None:
        if self.shared_bits < 0:
            raise ValueError(f"shared_bits must be >= 0, got {self.shared_bits}")
        if self.state_bits < 0:
            raise ValueError(f"state_bits must be >= 0, got {self.state_bits}")


@dataclass(frozen=True)
class Marginals:
    """Exact conditioned node probabilities for one compiled sub-forest.

    Attributes:
        conditioned: Node ids of the conditioned basic events, in the
            (deterministic) arena-index order that defines sigma's bits.
        weights: ``(2**C,)`` probability of each conditioning assignment;
            sums to 1.
        values: Node id -> ``(2**C,)`` conditional failure probability.
            For nodes inside shared regions the entries are exactly 0.0
            or 1.0 (they are boolean functions of sigma).
    """

    conditioned: tuple[int, ...]
    weights: np.ndarray
    values: dict[int, np.ndarray]

    def marginal(self, node_id: int) -> float:
        """Unconditional exact failure probability of one node."""
        return float(np.dot(self.weights, self.values[node_id]))


def _sub_dag(forest: CompiledForest, roots: Iterable[int]) -> list[int]:
    """Ascending node ids reachable from ``roots`` (a valid eval order)."""
    seen: set[int] = set()
    stack = list(roots)
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        stack.extend(
            forest.children[forest.child_start[nid] : forest.child_end[nid]]
        )
    return sorted(seen)


def compute_marginals(
    forest: CompiledForest,
    probabilities: "np.ndarray | Sequence[float]",
    roots: Iterable[int],
    extra_refs: Iterable[int] = (),
    budget: ExactBudget | None = None,
) -> Marginals:
    """Exact conditional failure probabilities for a compiled sub-forest.

    ``probabilities`` maps arena index -> basic-event failure probability
    (the arena's own table). ``roots`` are the node ids whose joint
    distribution the caller needs — typically one per closure element.
    ``extra_refs`` names nodes referenced *outside* the forest (e.g. a
    basic event that is also sampled directly as a raw link element);
    each reference counts toward sharing exactly like a parent edge.

    Sharing analysis: a node is *shared* when its reference count —
    parent edges within the sub-DAG, plus one per appearance in
    ``roots``/``extra_refs`` — is at least 2, or when it lies under a
    shared node. Every basic event with ``0 < p < 1`` inside a shared
    region is conditioned out (one sigma bit); all remaining leaves then
    appear under exactly one root along exactly one path, which is what
    makes the bottom-up product/DP propagation exact.

    Raises :class:`ExactDeclined` when more than ``budget.shared_bits``
    events would need conditioning.
    """
    budget = budget or ExactBudget()
    probabilities = np.asarray(probabilities, dtype=np.float64)
    roots = list(roots)
    order = _sub_dag(forest, roots)
    in_dag = set(order)

    refs: dict[int, int] = {nid: 0 for nid in order}
    for nid in order:
        for child in forest.children[
            forest.child_start[nid] : forest.child_end[nid]
        ]:
            refs[child] += 1
    for nid in roots:
        refs[nid] += 1
    for nid in extra_refs:
        if nid in in_dag:
            refs[nid] += 1

    # Top-down shared marking: parents have larger node ids than their
    # children (postorder interning), so descending order visits every
    # node before its descendants.
    shared: set[int] = set()
    for nid in reversed(order):
        if refs[nid] >= 2:
            shared.add(nid)
        if nid in shared:
            shared.update(
                forest.children[forest.child_start[nid] : forest.child_end[nid]]
            )

    ops, operands = forest.ops, forest.operands
    conditioned = [
        nid
        for nid in order
        if ops[nid] == OP_LEAF
        and nid in shared
        and 0.0 < probabilities[operands[nid]] < 1.0
    ]
    # Sigma bit order follows arena indices, which are identical across
    # processes for the same substrate — node ids depend on compile order
    # and are not.
    conditioned.sort(key=lambda nid: operands[nid])
    if len(conditioned) > budget.shared_bits:
        raise ExactDeclined(
            f"{len(conditioned)} shared basic events need conditioning, "
            f"budget allows {budget.shared_bits} (2**C assignments)"
        )

    n_sigma = 1 << len(conditioned)
    sigma = np.arange(n_sigma, dtype=np.int64)
    weights = np.ones(n_sigma, dtype=np.float64)
    patterns: dict[int, np.ndarray] = {}
    for bit, nid in enumerate(conditioned):
        fired = ((sigma >> bit) & 1).astype(np.float64)
        p = float(probabilities[operands[nid]])
        weights *= np.where(fired == 1.0, p, 1.0 - p)
        patterns[nid] = fired

    values: dict[int, np.ndarray] = {}
    for nid in order:
        op = ops[nid]
        if op == OP_LEAF:
            pattern = patterns.get(nid)
            if pattern is not None:
                values[nid] = pattern
            else:
                values[nid] = np.full(
                    n_sigma, float(probabilities[operands[nid]])
                )
            continue
        child_values = [
            values[child]
            for child in forest.children[
                forest.child_start[nid] : forest.child_end[nid]
            ]
        ]
        if op == OP_OR:
            alive = np.ones(n_sigma, dtype=np.float64)
            for q in child_values:
                alive *= 1.0 - q
            values[nid] = 1.0 - alive
        elif op == OP_AND:
            down = np.ones(n_sigma, dtype=np.float64)
            for q in child_values:
                down *= q
            values[nid] = down
        else:  # OP_KOFN: Poisson-binomial DP, threshold t, O(n * t).
            threshold = operands[nid]
            # dp[j] = P(exactly j of the children seen so far fired),
            # j < threshold; probability mass reaching the threshold is
            # accumulated in ``fired`` and never re-enters the DP.
            dp = np.zeros((threshold, n_sigma), dtype=np.float64)
            dp[0] = 1.0
            fired = np.zeros(n_sigma, dtype=np.float64)
            for q in child_values:
                fired += dp[threshold - 1] * q
                for j in range(threshold - 1, 0, -1):
                    dp[j] = dp[j] * (1.0 - q) + dp[j - 1] * q
                dp[0] = dp[0] * (1.0 - q)
            values[nid] = fired
    return Marginals(
        conditioned=tuple(conditioned), weights=weights, values=values
    )


#: Enumerations depend only on the bit count and the rows are immutable,
#: so one set per count serves every closure of that size (the plan-level
#: hot loop asks for the same few counts hundreds of times per search).
_ROWS_CACHE: dict[int, list[np.ndarray]] = {}


def enumeration_rows(bits: int) -> list[np.ndarray]:
    """Bit-packed failure rows enumerating every state of ``bits`` events.

    Row ``i`` (one per event) marks the "rounds" — all ``2**bits`` states,
    state ``s`` being round ``s`` — in which event ``i`` is failed:
    exactly those with bit ``i`` of ``s`` set. Rows use the
    ``np.packbits`` MSB-first layout of :class:`PackedBatch`, so they are
    drop-in leaf rows for :meth:`CompiledForest.evaluate` and
    :class:`~repro.routing.base.PackedRoundStates`. The returned rows are
    read-only and shared across calls; do not mutate them.
    """
    cached = _ROWS_CACHE.get(bits)
    if cached is not None:
        return cached
    states = np.arange(1 << bits, dtype=np.int64)
    dense = ((states[np.newaxis, :] >> np.arange(bits)[:, np.newaxis]) & 1)
    packed = np.packbits(dense.astype(bool), axis=1)
    rows = []
    for i in range(bits):
        row = packed[i]
        row.flags.writeable = False
        rows.append(row)
    if len(_ROWS_CACHE) >= 32:
        _ROWS_CACHE.clear()
    _ROWS_CACHE[bits] = rows
    return rows


def enumeration_weights(probabilities: Sequence[float]) -> np.ndarray:
    """Exact probability of every enumerated state (same bit layout).

    ``probabilities[i]`` is event ``i``'s failure probability; the result
    has ``2**len(probabilities)`` entries summing to 1, entry ``s`` being
    the product of ``p_i`` over set bits and ``1 - p_i`` over clear bits
    — the independence factorisation the dagger samplers draw from.

    Built as the tensor product of per-event ``(1 - p, p)`` factors,
    doubling the vector once per event: bit ``i`` selects the high or low
    half of each ``2**(i+1)`` block, so appending event ``i``'s factor is
    one concatenate — total work O(2**n), not O(n * 2**n).
    """
    weights = np.ones(1, dtype=np.float64)
    for p in probabilities:
        p = float(p)
        weights = np.concatenate([weights * (1.0 - p), weights * p])
    return weights


def exact_tree_probability(
    tree: "FaultTree",
    probabilities: Mapping[str, float],
    budget: ExactBudget | None = None,
) -> float:
    """Exact top-event probability of one fault tree.

    Compiles the tree into a throwaway single-subject forest and runs
    :func:`compute_marginals`. Unlike the ``2**n`` enumeration of
    :func:`~repro.faults.faulttree.exact_failure_probability` (kept as
    the test oracle), repeated-free trees of any size are polynomial —
    a k-of-n fleet over hundreds of workers is exact via the
    Poisson-binomial DP — and trees with shared events stay exact up to
    ``budget.shared_bits`` conditioning bits (:class:`ExactDeclined`
    beyond that).
    """
    events = sorted(tree.basic_events())
    arena = ComponentArena(events, (float(probabilities[e]) for e in events))
    forest = CompiledForest(arena)
    root = forest.ensure_subject(tree.subject_id, tree.root)
    marginals = compute_marginals(
        forest, arena.probabilities, [root], budget=budget
    )
    return marginals.marginal(root)
