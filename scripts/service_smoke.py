#!/usr/bin/env python
"""End-to-end smoke test for ``python -m repro serve``.

Run by CI (and usable locally) to prove the service contract holds on a
real process, not just in-process test doubles:

1. start the server as a subprocess on an OS-assigned port,
2. wait for ``/readyz`` to report serving,
3. run a quick assessment that must come back ``status="ok"``,
4. run an oversized assessment under a tight deadline and require an
   anytime ``status="degraded"`` response — partial rounds, honest
   (widened) confidence interval, ``runtime.cancelled`` set — never an
   exception-shaped timeout,
5. SIGTERM the server and require a clean drain (exit code 0).

Machine speeds vary wildly across CI runners, so step 4 adapts: if the
deadline expired before the first chunk finished (``cancelled``) the
deadline is doubled; if everything finished in time (``ok``) the round
count is quadrupled. A few iterations land in the degraded window on
any hardware; a hard attempt cap keeps the job bounded.

Exits 0 on success, 1 on failure. No third-party dependencies.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service.client import HttpServiceClient  # noqa: E402

READY_TIMEOUT_SECONDS = 30.0
DRAIN_TIMEOUT_SECONDS = 30.0
MAX_DEGRADED_ATTEMPTS = 8


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def start_server() -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--scale", "tiny",
            "--port", "0",
            "--queue-capacity", "4",
            "--scheduler-workers", "1",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    # serve() announces the bound port on stdout before accepting work.
    line = process.stdout.readline().strip()
    check(
        "listening on http://" in line,
        f"server did not announce its address (got {line!r})",
    )
    base_url = line.split("listening on ", 1)[1]
    return process, base_url


def wait_ready(client: HttpServiceClient) -> None:
    deadline = time.monotonic() + READY_TIMEOUT_SECONDS
    while time.monotonic() < deadline:
        try:
            reply = client.readyz()
        except Exception:
            time.sleep(0.1)
            continue
        if reply.get("ready"):
            check(reply.get("state") == "serving", f"unexpected readyz: {reply}")
            return
        time.sleep(0.1)
    raise SmokeFailure("server never became ready")


def smoke_ok_assessment(client: HttpServiceClient, hosts: list[str]) -> None:
    reply = client.assess(hosts, k=2, rounds=20_000)
    check(reply["status"] == "ok", f"expected ok, got {reply['status']}")
    score = reply["result"]["estimate"]["score"]
    check(0.0 < score <= 1.0, f"score {score} out of range")
    check(
        reply["result"]["runtime"]["cancelled"] is False,
        "ok response must not be marked cancelled",
    )
    print(f"ok assessment: score={score:.4f}")


def smoke_degraded_assessment(client: HttpServiceClient, hosts: list[str]) -> None:
    rounds, deadline = 2_000_000, 0.2
    for attempt in range(1, MAX_DEGRADED_ATTEMPTS + 1):
        reply = client.assess(
            hosts, k=2, rounds=rounds, deadline_seconds=deadline
        )
        status = reply["status"]
        print(
            f"attempt {attempt}: rounds={rounds} deadline={deadline}s "
            f"-> {status}"
        )
        if status == "degraded":
            estimate = reply["result"]["estimate"]
            runtime = reply["result"]["runtime"]
            check(
                0 < estimate["rounds"] < rounds,
                f"degraded result must carry partial rounds, got "
                f"{estimate['rounds']}/{rounds}",
            )
            check(
                runtime["cancelled"] is True,
                "degraded response must record the cancellation",
            )
            check(
                estimate["confidence_interval_width"] > 0.0,
                "degraded estimate must keep an honest CI width",
            )
            print(
                f"anytime degraded: {estimate['rounds']}/{rounds} rounds, "
                f"ci={estimate['confidence_interval_width']:.5f}"
            )
            return
        if status == "cancelled":
            deadline *= 2.0  # too slow: let the first chunk finish
        elif status == "ok":
            rounds *= 4  # too fast: make the work outlast the deadline
        else:
            raise SmokeFailure(f"unexpected status {status}: {reply}")
    raise SmokeFailure("never observed an anytime-degraded response")


def smoke_drain(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=DRAIN_TIMEOUT_SECONDS)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SmokeFailure("server did not drain after SIGTERM")
    check(code == 0, f"expected clean drain exit 0, got {code}")
    print("clean SIGTERM drain: exit 0")


def main() -> int:
    process, base_url = start_server()
    print(f"server up at {base_url} (pid {process.pid})")
    try:
        client = HttpServiceClient(base_url, timeout=120.0)
        wait_ready(client)
        health = client.healthz()
        check(
            health.get("health", {}).get("state") == "serving",
            f"healthz must report serving, got {health}",
        )
        hosts = ["host/0/0/0", "host/1/0/0", "host/2/0/0"]
        smoke_ok_assessment(client, hosts)
        smoke_degraded_assessment(client, hosts)
        smoke_drain(process)
    except SmokeFailure as failure:
        print(f"SMOKE FAILED: {failure}", file=sys.stderr)
        return 1
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
        if process.stdout is not None:
            process.stdout.close()
    print("service smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
