#!/usr/bin/env python
"""End-to-end smoke test for ``python -m repro serve``.

Run by CI (and usable locally) to prove the service contract holds on a
real process, not just in-process test doubles:

1. start the server as a subprocess on an OS-assigned port,
2. wait for ``/readyz`` to report serving,
3. run a quick assessment that must come back ``status="ok"``,
4. run an oversized assessment under a tight deadline and require an
   anytime ``status="degraded"`` response — partial rounds, honest
   (widened) confidence interval, ``runtime.cancelled`` set — never an
   exception-shaped timeout,
5. SIGTERM the server and require a clean drain (exit code 0).

With ``--crash`` it instead proves the durability contract on a real
``kill -9``:

1. a reference server answers a keyed assessment (the ground truth),
2. a journaled server is SIGKILLed while that same keyed request is
   journaled-``started`` but unfinished,
3. a restarted server on the same journal recovers the request; the
   resubmitted key joins it and the answer must carry
   ``runtime.recovered`` and be *bit-identical* to the reference
   (per-request seeds derive from the key, not the process), and
4. resubmitting the now-completed key must replay the stored response
   (``replayed`` set) without executing any new assessment.

With ``--crash-worker`` it proves the *fleet* failover contract: a
``--workers 2`` server takes a concurrent keyed burst while one worker
is ``kill -9``'d mid-request. Every keyed request must answer exactly
once (no loss, no duplication), the interrupted one must come back
``runtime.recovered`` from a survivor, and the dead shard must respawn
(generation bump in ``/healthz``) before a clean SIGTERM drain.

Machine speeds vary wildly across CI runners, so the timing-sensitive
steps adapt: the deadline/round knobs of step 4 walk toward the
degraded window, and the crash run grows its round count until the
kill demonstrably lands mid-execution. Hard attempt caps keep the job
bounded.

Exits 0 on success, 1 on failure. No third-party dependencies.
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service.client import HttpServiceClient  # noqa: E402
from repro.service.journal import RequestJournal  # noqa: E402

READY_TIMEOUT_SECONDS = 30.0
DRAIN_TIMEOUT_SECONDS = 30.0
MAX_DEGRADED_ATTEMPTS = 8
MAX_CRASH_ATTEMPTS = 6
CRASH_KEY = "crash-smoke-job"


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def start_server(extra_args: list[str] | None = None) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--scale", "tiny",
            "--port", "0",
            "--queue-capacity", "4",
            "--scheduler-workers", "1",
            *(extra_args or []),
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    # serve() announces the bound port on stdout before accepting work.
    line = process.stdout.readline().strip()
    check(
        "listening on http://" in line,
        f"server did not announce its address (got {line!r})",
    )
    base_url = line.split("listening on ", 1)[1]
    return process, base_url


def wait_ready(client: HttpServiceClient) -> None:
    deadline = time.monotonic() + READY_TIMEOUT_SECONDS
    while time.monotonic() < deadline:
        try:
            reply = client.readyz()
        except Exception:
            time.sleep(0.1)
            continue
        if reply.get("ready"):
            check(reply.get("state") == "serving", f"unexpected readyz: {reply}")
            return
        time.sleep(0.1)
    raise SmokeFailure("server never became ready")


def smoke_ok_assessment(client: HttpServiceClient, hosts: list[str]) -> None:
    reply = client.assess(hosts, k=2, rounds=20_000)
    check(reply["status"] == "ok", f"expected ok, got {reply['status']}")
    score = reply["result"]["estimate"]["score"]
    check(0.0 < score <= 1.0, f"score {score} out of range")
    check(
        reply["result"]["runtime"]["cancelled"] is False,
        "ok response must not be marked cancelled",
    )
    print(f"ok assessment: score={score:.4f}")


def smoke_degraded_assessment(client: HttpServiceClient, hosts: list[str]) -> None:
    rounds, deadline = 2_000_000, 0.2
    for attempt in range(1, MAX_DEGRADED_ATTEMPTS + 1):
        reply = client.assess(
            hosts, k=2, rounds=rounds, deadline_seconds=deadline
        )
        status = reply["status"]
        print(
            f"attempt {attempt}: rounds={rounds} deadline={deadline}s "
            f"-> {status}"
        )
        if status == "degraded":
            estimate = reply["result"]["estimate"]
            runtime = reply["result"]["runtime"]
            check(
                0 < estimate["rounds"] < rounds,
                f"degraded result must carry partial rounds, got "
                f"{estimate['rounds']}/{rounds}",
            )
            check(
                runtime["cancelled"] is True,
                "degraded response must record the cancellation",
            )
            check(
                estimate["confidence_interval_width"] > 0.0,
                "degraded estimate must keep an honest CI width",
            )
            print(
                f"anytime degraded: {estimate['rounds']}/{rounds} rounds, "
                f"ci={estimate['confidence_interval_width']:.5f}"
            )
            return
        if status == "cancelled":
            deadline *= 2.0  # too slow: let the first chunk finish
        elif status == "ok":
            rounds *= 4  # too fast: make the work outlast the deadline
        else:
            raise SmokeFailure(f"unexpected status {status}: {reply}")
    raise SmokeFailure("never observed an anytime-degraded response")


def smoke_drain(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=DRAIN_TIMEOUT_SECONDS)
    except subprocess.TimeoutExpired:
        process.kill()
        raise SmokeFailure("server did not drain after SIGTERM")
    check(code == 0, f"expected clean drain exit 0, got {code}")
    print("clean SIGTERM drain: exit 0")


def _stop(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.kill()
        process.wait(timeout=10.0)
    if process.stdout is not None:
        process.stdout.close()


def _reference_answer(hosts: list[str], rounds: int) -> dict:
    """Ground truth: a fresh (journal-free) server answers the keyed job."""
    process, base_url = start_server()
    try:
        client = HttpServiceClient(base_url, timeout=300.0)
        wait_ready(client)
        reply = client.assess(
            hosts, k=2, rounds=rounds, idempotency_key=CRASH_KEY
        )
        check(reply["status"] == "ok", f"reference run not ok: {reply['status']}")
        return reply
    finally:
        _stop(process)


def _kill_mid_execution(
    hosts: list[str], journal_dir: str, rounds: int
) -> str | None:
    """SIGKILL a journaled server while the keyed request is executing.

    Returns the journaled request id, or ``None`` when the request
    finished before the kill landed (caller should retry with more
    rounds).
    """
    process, base_url = start_server(["--journal-dir", journal_dir])
    try:
        client = HttpServiceClient(base_url, timeout=300.0, max_attempts=1)
        wait_ready(client)
        # The HTTP call dies with the server; fire it from a thread and
        # let the connection error evaporate.
        submit = threading.Thread(
            target=lambda: _swallow(
                client.assess,
                hosts, k=2, rounds=rounds, idempotency_key=CRASH_KEY,
            ),
            daemon=True,
        )
        submit.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            state = RequestJournal.scan(journal_dir)
            started = [
                p for p in state.pending
                if p.idempotency_key == CRASH_KEY and p.started
            ]
            if started:
                process.kill()  # SIGKILL: no drain, no journal goodbye
                process.wait(timeout=10.0)
                return started[0].request_id
            if CRASH_KEY in state.keys:
                return None  # finished before we could kill: too fast
            time.sleep(0.01)
        raise SmokeFailure("keyed request never reached journaled-started")
    finally:
        _stop(process)


def _swallow(fn, *args, **kwargs) -> None:
    try:
        fn(*args, **kwargs)
    except Exception:
        pass


def smoke_crash_recovery() -> None:
    hosts = ["host/0/0/0", "host/1/0/0", "host/2/0/0"]
    rounds = 2_000_000
    workdir = tempfile.mkdtemp(prefix="repro-crash-smoke-")
    try:
        victim_id = None
        for attempt in range(1, MAX_CRASH_ATTEMPTS + 1):
            journal_dir = os.path.join(workdir, f"journal-{attempt}")
            victim_id = _kill_mid_execution(hosts, journal_dir, rounds)
            if victim_id is not None:
                print(
                    f"attempt {attempt}: killed server mid-execution of "
                    f"{victim_id} (rounds={rounds})"
                )
                break
            rounds *= 4  # outlast the kill window on faster machines
            print(f"attempt {attempt}: too fast, growing to rounds={rounds}")
        check(
            victim_id is not None,
            "request kept finishing before the SIGKILL could land",
        )
        reference = _reference_answer(hosts, rounds)

        # Restart on the surviving journal: the request must recover.
        process, base_url = start_server(["--journal-dir", journal_dir])
        try:
            client = HttpServiceClient(base_url, timeout=300.0)
            wait_ready(client)
            reply = client.assess(
                hosts, k=2, rounds=rounds, idempotency_key=CRASH_KEY
            )
            check(
                reply["request_id"] == victim_id,
                f"recovered id {reply['request_id']} != journaled {victim_id}",
            )
            check(
                reply["result"]["runtime"]["recovered"] is True,
                "recovered execution must disclose runtime.recovered",
            )
            check(
                reply["result"]["estimate"] == reference["result"]["estimate"],
                "recovered estimate differs from the reference run:\n"
                f"  recovered: {reply['result']['estimate']}\n"
                f"  reference: {reference['result']['estimate']}",
            )
            print(
                "recovered bit-identical: score="
                f"{reply['result']['estimate']['score']:.6f}"
            )

            # The key is now durably completed: a retry must replay the
            # stored response without running any new assessment.
            before = client.metrics()["counters"].get("service/status/ok", 0)
            again = client.assess(
                hosts, k=2, rounds=rounds, idempotency_key=CRASH_KEY
            )
            check(
                again.get("replayed") is True,
                f"resubmitted key was not replayed: {again.get('replayed')}",
            )
            check(
                again["result"]["estimate"] == reply["result"]["estimate"],
                "replayed estimate differs from the recovered one",
            )
            after = client.metrics()["counters"].get("service/status/ok", 0)
            check(
                after == before,
                f"replay executed new work ({before} -> {after} completions)",
            )
            print("completed key replayed from the store, zero re-execution")
            smoke_drain(process)
        finally:
            _stop(process)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _fleet_view(client: HttpServiceClient) -> dict:
    fleet = client.healthz().get("fleet")
    check(fleet is not None, "fleet section missing from /healthz")
    return fleet


def _wait_fleet_alive(client: HttpServiceClient, workers: int) -> dict:
    deadline = time.monotonic() + READY_TIMEOUT_SECONDS
    fleet = None
    while time.monotonic() < deadline:
        fleet = _fleet_view(client)
        if fleet["alive"] == workers:
            return fleet
        time.sleep(0.1)
    raise SmokeFailure(f"fleet never reached {workers} alive workers: {fleet}")


def _keyed_burst(
    base_url: str, hosts: list[str], keys: list[str], rounds: int
) -> tuple[list[dict], list[Exception]]:
    """Fire one keyed assessment per key from concurrent client threads."""
    replies: list[dict] = []
    errors: list[Exception] = []
    lock = threading.Lock()

    def run_one(key: str) -> None:
        # One client per thread: retries on connection resets and 503
        # sheds are exactly the failover window this smoke provokes.
        client = HttpServiceClient(base_url, timeout=300.0, max_attempts=8)
        try:
            reply = client.assess(
                hosts, k=2, rounds=rounds, idempotency_key=key
            )
            with lock:
                replies.append(reply)
        except Exception as exc:  # collected, asserted on by the caller
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=run_one, args=(key,), daemon=True)
        for key in keys
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
        check(not thread.is_alive(), "a client thread wedged")
    return replies, errors


def _kill_busy_worker(client: HttpServiceClient) -> int | None:
    """SIGKILL a worker that is executing a request; returns its shard."""
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        fleet = _fleet_view(client)
        busy = [
            s for s in fleet["shards"]
            if s["state"] == "alive" and s["inflight"] and s["pid"]
        ]
        if busy:
            os.kill(busy[0]["pid"], signal.SIGKILL)
            return busy[0]["shard"]
        time.sleep(0.01)
    return None


def smoke_worker_failover() -> None:
    """kill -9 a fleet worker under concurrent keyed load.

    Asserts the supervisor contract: every keyed request answers exactly
    once (no loss, no duplication), the interrupted request is recovered
    on a survivor with ``runtime.recovered`` set, and the dead shard is
    respawned (generation bump) before a clean SIGTERM drain.
    """
    hosts = ["host/0/0/0", "host/1/0/0", "host/2/0/0"]
    rounds = 150_000
    workdir = tempfile.mkdtemp(prefix="repro-fleet-smoke-")
    try:
        for attempt in range(1, MAX_CRASH_ATTEMPTS + 1):
            journal_dir = os.path.join(workdir, f"journal-{attempt}")
            process, base_url = start_server([
                "--journal-dir", journal_dir,
                "--queue-capacity", "64",
                "--workers", "2",
                "--heartbeat-interval", "0.1",
                "--heartbeat-misses", "5",
            ])
            try:
                probe = HttpServiceClient(base_url, timeout=60.0)
                wait_ready(probe)
                _wait_fleet_alive(probe, workers=2)
                keys = [f"fleet-smoke-{attempt}-{i}" for i in range(12)]
                killer_result: list[int | None] = []
                killer = threading.Thread(
                    target=lambda: killer_result.append(
                        _kill_busy_worker(probe)
                    ),
                    daemon=True,
                )
                killer.start()
                replies, errors = _keyed_burst(base_url, hosts, keys, rounds)
                killer.join(timeout=60.0)
                check(not errors, f"client errors during failover: {errors}")
                check(
                    len(replies) == len(keys),
                    f"{len(keys) - len(replies)} keyed requests lost",
                )
                by_id: dict[str, int] = {}
                for reply in replies:
                    check(
                        reply["status"] == "ok",
                        f"non-ok reply during failover: {reply['status']}",
                    )
                    by_id[reply["request_id"]] = (
                        by_id.get(reply["request_id"], 0) + 1
                    )
                check(
                    len(by_id) == len(keys),
                    f"duplicated request ids: {sorted(by_id)}",
                )
                victim = killer_result[0] if killer_result else None
                recovered = [
                    r for r in replies
                    if r["result"]["runtime"].get("recovered")
                ]
                if victim is None or not recovered:
                    # The kill never landed mid-execution: grow the work
                    # until it demonstrably does.
                    print(
                        f"attempt {attempt}: no mid-flight kill "
                        f"(victim={victim}, recovered={len(recovered)}), "
                        f"growing rounds to {rounds * 2}"
                    )
                    rounds *= 2
                    continue
                print(
                    f"attempt {attempt}: killed shard {victim} mid-request; "
                    f"{len(recovered)} request(s) recovered on a survivor"
                )
                fleet = _wait_fleet_alive(probe, workers=2)
                shard = fleet["shards"][victim]
                check(
                    shard["generation"] >= 2 and shard["restarts"] >= 1,
                    f"dead shard was not respawned: {shard}",
                )
                print(
                    f"shard {victim} respawned: generation="
                    f"{shard['generation']} pid={shard['pid']}"
                )
                workers = {
                    row["name"]: row for row in probe.healthz()["workers"]
                }
                check(
                    set(workers) == {"shard-0", "shard-1"},
                    f"healthz workers view incomplete: {sorted(workers)}",
                )
                smoke_drain(process)
                return
            finally:
                _stop(process)
        raise SmokeFailure(
            "kill -9 never landed mid-execution despite growing rounds"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_basic_smoke() -> None:
    process, base_url = start_server()
    print(f"server up at {base_url} (pid {process.pid})")
    try:
        client = HttpServiceClient(base_url, timeout=120.0)
        wait_ready(client)
        health = client.healthz()
        check(
            health.get("health", {}).get("state") == "serving",
            f"healthz must report serving, got {health}",
        )
        hosts = ["host/0/0/0", "host/1/0/0", "host/2/0/0"]
        smoke_ok_assessment(client, hosts)
        smoke_degraded_assessment(client, hosts)
        smoke_drain(process)
    finally:
        _stop(process)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--crash",
        action="store_true",
        help="run the kill-9 crash-recovery smoke instead of the basic one",
    )
    parser.add_argument(
        "--crash-worker",
        action="store_true",
        help="run the fleet failover smoke: kill -9 a worker under load",
    )
    args = parser.parse_args()
    try:
        if args.crash:
            smoke_crash_recovery()
        elif args.crash_worker:
            smoke_worker_failover()
        else:
            run_basic_smoke()
    except SmokeFailure as failure:
        print(f"SMOKE FAILED: {failure}", file=sys.stderr)
        return 1
    print("service smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
